//! Fig. 14: performance impact of the c-map size (20 PEs).
//!
//! The paper sweeps the c-map from 1 kB to 16 kB plus an impractical
//! unlimited configuration, all normalized to no-c-map. Shape targets:
//! 4-cycle benefits most (no frontier reuse exists, so memoized
//! connectivity is pure win — up to 5.3×, average 3.0×); k-CL and diamond
//! benefit little (frontier memoization already removed the redundancy);
//! a 4 kB map captures most of the unlimited benefit; the dense Mi gets
//! consistently good speedups.

use fm_bench::datasets::dataset;
use fm_bench::harness::{fmt_x, geomean, BenchArgs, Table};
use fm_bench::workloads::{workload, WorkloadKey};
use fm_sim::{simulate, SimConfig};

fn main() {
    let args = BenchArgs::parse();
    let sizes: [(usize, &str); 5] = [
        (1024, "1kB"),
        (4 * 1024, "4kB"),
        (8 * 1024, "8kB"),
        (16 * 1024, "16kB"),
        (usize::MAX, "unlimited"),
    ];
    let mut headers = vec!["app".to_string(), "graph".to_string()];
    headers.extend(sizes.iter().map(|(_, n)| n.to_string()));
    headers.push("read-ratio@8kB".to_string());
    let mut table = Table::new(
        "fig14",
        "c-map speedup over no-c-map (20 PEs)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    let mut four_cycle: Vec<f64> = Vec::new();
    for wk in WorkloadKey::all() {
        let w = workload(wk);
        let plan = w.plan();
        for key in wk.fig14_datasets() {
            let d = dataset(key, args.quick);
            let no_cmap = simulate(
                &d.graph,
                &plan,
                &SimConfig { num_pes: 20, cmap_bytes: 0, ..Default::default() },
            );
            let mut row = vec![wk.label().to_string(), key.label().to_string()];
            let mut read_ratio = 0.0;
            for (i, &(bytes, _)) in sizes.iter().enumerate() {
                let cfg = SimConfig { num_pes: 20, cmap_bytes: bytes, ..Default::default() };
                let report = simulate(&d.graph, &plan, &cfg);
                assert_eq!(report.counts, no_cmap.counts, "c-map must not change counts");
                let x = no_cmap.cycles as f64 / report.cycles as f64;
                per_size[i].push(x);
                if wk == WorkloadKey::Sl4Cycle && bytes == usize::MAX {
                    four_cycle.push(x);
                }
                if bytes == 8 * 1024 {
                    read_ratio = report.cmap_read_ratio();
                }
                row.push(fmt_x(x));
            }
            row.push(format!("{:.0}%", 100.0 * read_ratio));
            table.push(row);
        }
    }
    for (i, &(_, name)) in sizes.iter().enumerate() {
        table.note(format!("{name} geomean over no-cmap: {}", fmt_x(geomean(&per_size[i]))));
    }
    table.note(format!(
        "4-cycle unlimited-c-map geomean: {} (paper: 3.0x average, up to 5.3x)",
        fmt_x(geomean(&four_cycle))
    ));
    table.note("paper read ratios for 4-cycle: 93% (As), 98% (mico), 86% (Pa)");
    table.emit(&args.out).expect("write fig14");
}
