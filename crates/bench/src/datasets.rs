//! Dataset stand-ins for the paper's input graphs (Table I).
//!
//! The paper evaluates on SNAP graphs (As, Mi/mico, Pa/patents,
//! Yo/youtube, Lj/livejournal, Or/orkut). We ship deterministic synthetic
//! stand-ins with the same *character* — the degree regime and clustering
//! that drive the evaluation's trends — scaled to cycle-simulation-
//! feasible sizes:
//!
//! | Key | Paper graph | Character reproduced | Stand-in |
//! |---|---|---|---|
//! | As | smallest dataset | small, moderate degree, least parallelism | power-law cluster, 4 k vertices |
//! | Mi | mico | densest (d̄≈21), heavy clustering, best c-map reuse | power-law cluster, d̄≈22 |
//! | Pa | patents | large, sparse, poor cache behaviour (65.9% L2 misses) | low-m power-law, many vertices |
//! | Yo | youtube | large, sparse, weakly clustered, rare huge hubs | preferential attachment |
//! | Lj | livejournal | large, more triangles than Yo | power-law cluster |
//! | Or | orkut | largest working set, dense | power-law cluster, d̄≈28 |
//!
//! All generation is seeded, so every experiment is exactly reproducible.

use fm_graph::{generators, CsrGraph, GraphStats};

/// Keys of the paper's datasets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DatasetKey {
    /// Smallest dataset.
    As,
    /// mico: densest graph.
    Mi,
    /// patents: large and sparse.
    Pa,
    /// youtube: large, sparse, rare huge hubs.
    Yo,
    /// livejournal: large, triangle-rich.
    Lj,
    /// orkut: the large-graph experiment (§VII-D).
    Or,
}

impl DatasetKey {
    /// All keys, in the paper's presentation order.
    pub fn all() -> [DatasetKey; 6] {
        [
            DatasetKey::As,
            DatasetKey::Mi,
            DatasetKey::Pa,
            DatasetKey::Yo,
            DatasetKey::Lj,
            DatasetKey::Or,
        ]
    }

    /// The short label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKey::As => "As",
            DatasetKey::Mi => "Mi",
            DatasetKey::Pa => "Pa",
            DatasetKey::Yo => "Yo",
            DatasetKey::Lj => "Lj",
            DatasetKey::Or => "Or",
        }
    }
}

impl std::str::FromStr for DatasetKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "as" => Ok(DatasetKey::As),
            "mi" | "mico" => Ok(DatasetKey::Mi),
            "pa" | "patents" => Ok(DatasetKey::Pa),
            "yo" | "youtube" => Ok(DatasetKey::Yo),
            "lj" | "livejournal" => Ok(DatasetKey::Lj),
            "or" | "orkut" => Ok(DatasetKey::Or),
            other => Err(format!("unknown dataset key: {other}")),
        }
    }
}

/// A built dataset: the graph plus its provenance.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which paper graph this stands in for.
    pub key: DatasetKey,
    /// The graph.
    pub graph: CsrGraph,
    /// Generator description (for Table I provenance).
    pub recipe: String,
}

impl Dataset {
    /// Table-I-style statistics.
    pub fn stats(&self) -> GraphStats {
        GraphStats::of(&self.graph)
    }
}

/// Builds the stand-in for `key`. `quick` shrinks every graph ~4× in
/// vertices (and hubs ~2× in degree) for smoke runs.
///
/// Each stand-in is a power-law body plus a few *hubs* whose adjacency
/// lists have realistic absolute sizes (kilobytes) — it is these hub
/// lists, not the average degree, that create the private-cache pressure
/// and c-map occupancy gradient the paper's evaluation hinges on (see
/// [`fm_graph::generators::attach_hubs`]).
pub fn dataset(key: DatasetKey, quick: bool) -> Dataset {
    let s = if quick { 4 } else { 1 };
    let h = if quick { 2 } else { 1 };
    let build = |n: usize, m: usize, closure: f64, seed: u64, hubs: usize, hub_deg: usize| {
        let body = if closure > 0.0 {
            generators::powerlaw_cluster(n / s, m, closure, seed)
        } else {
            generators::preferential_attachment(n / s, m, seed)
        };
        let with_hubs = generators::attach_hubs(&body, hubs, (hub_deg / h).min(n / s), seed ^ 0xFF);
        // SNAP-like arbitrary labels: hubs land throughout the id space,
        // so they take part in every embedding role under symmetry orders.
        let graph = generators::shuffle_ids(&with_hubs, seed ^ 0x5A5A);
        let recipe = format!(
            "{}(n={}, m={m}, closure={closure}) + {hubs} hubs x deg {} (ids shuffled)",
            if closure > 0.0 { "powerlaw_cluster" } else { "preferential_attachment" },
            n / s,
            (hub_deg / h).min(n / s),
        );
        (graph, recipe)
    };
    let (graph, recipe) = match key {
        // as-Skitter-like: small body, extreme hub skew.
        DatasetKey::As => build(4_000, 5, 0.45, 0xA5, 10, 450),
        // mico: densest body, clustered, strong hubs.
        DatasetKey::Mi => build(6_000, 11, 0.60, 0x31, 10, 700),
        // patents: many vertices, sparse body (poor cache behaviour).
        DatasetKey::Pa => build(30_000, 3, 0.20, 0x9A, 12, 650),
        // youtube: weak clustering, rare huge hubs (paper dmax = 4017).
        DatasetKey::Yo => build(24_000, 4, 0.0, 0x40, 14, 800),
        // livejournal: large, more triangles than Yo.
        DatasetKey::Lj => build(36_000, 6, 0.35, 0x17, 14, 700),
        // orkut: the heaviest working set.
        DatasetKey::Or => build(30_000, 14, 0.50, 0x0C, 16, 800),
    };
    Dataset { key, graph, recipe }
}

/// Builds the datasets a figure evaluates, given its label subset.
pub fn datasets_for(keys: &[DatasetKey], quick: bool) -> Vec<Dataset> {
    keys.iter().map(|&k| dataset(k, quick)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stand_ins_are_valid_inputs() {
        for key in DatasetKey::all() {
            let d = dataset(key, true);
            assert!(d.graph.is_symmetric(), "{key:?} must be symmetric");
            assert!(d.graph.num_vertices() > 0);
            // Table I requirements hold by construction (builder).
        }
    }

    #[test]
    fn mi_is_densest_and_as_is_smallest() {
        let all: Vec<Dataset> = DatasetKey::all().iter().map(|&k| dataset(k, true)).collect();
        let avg = |d: &Dataset| d.graph.avg_degree();
        let mi = all.iter().find(|d| d.key == DatasetKey::Mi).expect("mi");
        for d in &all {
            if !matches!(d.key, DatasetKey::Mi | DatasetKey::Or) {
                assert!(avg(mi) > avg(d), "Mi must be denser than {:?}", d.key);
            }
        }
        let as_ = all.iter().find(|d| d.key == DatasetKey::As).expect("as");
        for d in &all {
            if d.key != DatasetKey::As {
                assert!(as_.graph.num_vertices() <= d.graph.num_vertices(), "As must be smallest");
            }
        }
    }

    #[test]
    fn heavy_tails_exist() {
        for key in [DatasetKey::Yo, DatasetKey::Pa] {
            let d = dataset(key, true);
            assert!(
                d.graph.max_degree() as f64 > 5.0 * d.graph.avg_degree(),
                "{key:?} needs rare high-degree hubs"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for key in DatasetKey::all() {
            assert_eq!(dataset(key, true).graph, dataset(key, true).graph);
        }
    }

    #[test]
    fn key_parsing() {
        assert_eq!("mico".parse::<DatasetKey>().unwrap(), DatasetKey::Mi);
        assert_eq!("Lj".parse::<DatasetKey>().unwrap(), DatasetKey::Lj);
        assert!("zz".parse::<DatasetKey>().is_err());
    }
}
