//! End-to-end mining microbenchmarks: the software engine across patterns
//! and modes, and the simulator's wall-clock cost per simulated cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fm_engine::{mine_single_threaded, EngineConfig};
use fm_graph::generators;
use fm_pattern::Pattern;
use fm_plan::{compile, CompileOptions};
use fm_sim::{simulate, SimConfig};

fn bench_engine_patterns(c: &mut Criterion) {
    let g = generators::powerlaw_cluster(2000, 6, 0.5, 7);
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    for (name, p) in [
        ("tc", Pattern::triangle()),
        ("4cl", Pattern::k_clique(4)),
        ("4cycle", Pattern::cycle(4)),
        ("diamond", Pattern::diamond()),
    ] {
        let plan = compile(&p, CompileOptions::default());
        // Faithful = the paper's GraphZero-equivalent datapath; the other
        // groups ablate the software-only candidate-generation
        // optimizations against it one tier at a time: bound pushdown,
        // +galloping, +hub-bitmap probes, +prefix reuse (the full default
        // config). The legacy groups pin `reuse: false` so their numbers
        // stay comparable across runs predating the reuse tier.
        group.bench_with_input(BenchmarkId::new("faithful", name), &plan, |b, plan| {
            b.iter(|| mine_single_threaded(&g, plan, &EngineConfig::paper_faithful()).counts)
        });
        group.bench_with_input(BenchmarkId::new("bounded", name), &plan, |b, plan| {
            b.iter(|| {
                mine_single_threaded(
                    &g,
                    plan,
                    &EngineConfig {
                        gallop_ratio: 0,
                        hub_bitmap: false,
                        reuse: false,
                        ..Default::default()
                    },
                )
                .counts
            })
        });
        group.bench_with_input(BenchmarkId::new("bounded-gallop", name), &plan, |b, plan| {
            b.iter(|| {
                mine_single_threaded(
                    &g,
                    plan,
                    &EngineConfig { hub_bitmap: false, reuse: false, ..Default::default() },
                )
                .counts
            })
        });
        group.bench_with_input(BenchmarkId::new("bitmap", name), &plan, |b, plan| {
            b.iter(|| {
                mine_single_threaded(&g, plan, &EngineConfig { reuse: false, ..Default::default() })
                    .counts
            })
        });
        group.bench_with_input(BenchmarkId::new("reuse", name), &plan, |b, plan| {
            b.iter(|| mine_single_threaded(&g, plan, &EngineConfig::default()).counts)
        });
        group.bench_with_input(BenchmarkId::new("cmap", name), &plan, |b, plan| {
            b.iter(|| {
                mine_single_threaded(
                    &g,
                    plan,
                    &EngineConfig {
                        use_cmap: true,
                        hub_bitmap: false,
                        reuse: false,
                        ..Default::default()
                    },
                )
                .counts
            })
        });
    }
    // AutoMine mode: the symmetry-breaking ablation.
    let auto = compile(&Pattern::triangle(), CompileOptions::automine());
    group.bench_function("automine/tc", |b| {
        b.iter(|| mine_single_threaded(&g, &auto, &EngineConfig::default()).counts)
    });
    group.finish();
}

fn bench_simulator_overhead(c: &mut Criterion) {
    // Host nanoseconds per simulated PE action — the simulator's own
    // performance, which bounds feasible experiment sizes.
    let g = generators::powerlaw_cluster(800, 5, 0.5, 9);
    let plan = compile(&Pattern::triangle(), CompileOptions::default());
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    for &pes in &[1usize, 8] {
        group.bench_with_input(BenchmarkId::new("tc-800v", pes), &pes, |b, &pes| {
            b.iter(|| simulate(&g, &plan, &SimConfig::with_pes(pes)).cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_patterns, bench_simulator_overhead);
criterion_main!(benches);
