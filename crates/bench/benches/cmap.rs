//! Microbenchmarks of the connectivity-map implementations: the two
//! software layouts (hash vs the |V|-sized vector of [15, 21]) and the
//! hardware timing model's probe-cost behaviour under load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fm_engine::cmap::{ConnectivityMap, HashCmap, VectorCmap};
use fm_graph::VertexId;
use fm_sim::cmap::HwCmap;
use rand::{Rng, SeedableRng};

fn keys(n: usize, universe: u32, seed: u64) -> Vec<u32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..universe)).collect()
}

fn bench_software_cmaps(c: &mut Criterion) {
    let mut group = c.benchmark_group("software-cmap");
    // A realistic working set: one level-bulk of 1k neighbors over a 1M
    // vertex universe, queried 8x each (the read-dominated 4-cycle regime).
    let bulk = keys(1024, 1 << 20, 1);
    let queries = keys(8 * 1024, 1 << 20, 2);
    group.bench_function("hash-insert-query-remove", |b| {
        let mut m = HashCmap::new();
        b.iter(|| {
            for &k in &bulk {
                m.insert(VertexId(k), 1);
            }
            let mut hits = 0u64;
            for &q in &queries {
                hits += m.query(VertexId(q));
            }
            for &k in &bulk {
                m.remove(VertexId(k), 1);
            }
            hits
        });
    });
    group.bench_function("vector-insert-query-remove", |b| {
        // The prior-work layout pays a |V|-sized allocation up front (done
        // here once) and O(1) accesses after.
        let mut m = VectorCmap::new(1 << 20);
        b.iter(|| {
            for &k in &bulk {
                m.insert(VertexId(k), 1);
            }
            let mut hits = 0u64;
            for &q in &queries {
                hits += m.query(VertexId(q));
            }
            for &k in &bulk {
                m.remove(VertexId(k), 1);
            }
            hits
        });
    });
    group.finish();
}

fn bench_hw_model_costs(c: &mut Criterion) {
    // The hardware model's functional+timing accesses at different loads
    // (cost model evaluation, not silicon timing).
    let mut group = c.benchmark_group("hw-cmap-model");
    for &fill in &[200usize, 1200] {
        group.bench_with_input(BenchmarkId::new("probe", fill), &fill, |b, &fill| {
            let mut m = HwCmap::new(1638, 4); // the 8kB configuration
            for k in keys(fill, 1 << 20, 3) {
                m.insert(k, 0);
            }
            let qs = keys(4096, 1 << 20, 4);
            b.iter(|| {
                let mut total = 0u64;
                for &q in &qs {
                    let (bits, cost) = m.query(q);
                    total += bits as u64 + cost;
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_software_cmaps, bench_hw_model_costs);
criterion_main!(benches);
