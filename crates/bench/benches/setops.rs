//! Microbenchmarks of the set-operation kernels (the SIU/SDU's software
//! twins): merge intersection/difference vs galloping, and the effect of
//! vid-bounded early exit. These are the operations §III identifies as the
//! dominant cost of software GPM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fm_engine::result::WorkCounters;
use fm_engine::setops;
use fm_graph::VertexId;
use rand::{Rng, SeedableRng};

fn sorted_list(len: usize, universe: u32, seed: u64) -> Vec<VertexId> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
    v.sort_unstable();
    v.dedup();
    v.into_iter().map(VertexId).collect()
}

fn bench_intersections(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection");
    for &len in &[64usize, 1024, 16 * 1024] {
        let a = sorted_list(len, 4 * len as u32, 1);
        let b = sorted_list(len, 4 * len as u32, 2);
        group.throughput(Throughput::Elements((a.len() + b.len()) as u64));
        group.bench_with_input(BenchmarkId::new("merge", len), &len, |bench, _| {
            let mut out = Vec::with_capacity(len);
            let mut w = WorkCounters::default();
            bench.iter(|| {
                out.clear();
                setops::intersect_into(&a, &b, &mut out, &mut w);
                out.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("galloping", len), &len, |bench, _| {
            let mut out = Vec::with_capacity(len);
            let mut w = WorkCounters::default();
            bench.iter(|| {
                out.clear();
                setops::intersect_galloping_into(&a, &b, &mut out, &mut w);
                out.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("merge-bounded-median", len), &len, |bench, _| {
            let mut out = Vec::with_capacity(len);
            let mut w = WorkCounters::default();
            let bound = a[a.len() / 2];
            bench.iter(|| {
                out.clear();
                setops::intersect_bounded_into(&a, &b, bound, &mut out, &mut w);
                out.len()
            });
        });
    }
    group.finish();
}

fn bench_asymmetric(c: &mut Criterion) {
    // The hub case: a tiny list against a huge one — where galloping shines
    // and the merge-based SIU pays |a| + |b|.
    let mut group = c.benchmark_group("asymmetric-intersection");
    let small = sorted_list(32, 1 << 20, 3);
    let large = sorted_list(64 * 1024, 1 << 20, 4);
    group.bench_function("merge-32-vs-64k", |bench| {
        let mut out = Vec::new();
        let mut w = WorkCounters::default();
        bench.iter(|| {
            out.clear();
            setops::intersect_into(&small, &large, &mut out, &mut w);
            out.len()
        });
    });
    group.bench_function("galloping-32-vs-64k", |bench| {
        let mut out = Vec::new();
        let mut w = WorkCounters::default();
        bench.iter(|| {
            out.clear();
            setops::intersect_galloping_into(&small, &large, &mut out, &mut w);
            out.len()
        });
    });
    group.finish();
}

fn bench_difference(c: &mut Criterion) {
    let a = sorted_list(8192, 32 * 1024, 5);
    let b = sorted_list(8192, 32 * 1024, 6);
    c.bench_function("difference-8k", |bench| {
        let mut out = Vec::new();
        let mut w = WorkCounters::default();
        bench.iter(|| {
            out.clear();
            setops::difference_into(&a, &b, &mut out, &mut w);
            out.len()
        });
    });
}

criterion_group!(benches, bench_intersections, bench_asymmetric, bench_difference);
criterion_main!(benches);
