//! Golden tests pinning the exact bytes of the experiment-result JSON.
//!
//! Every `BENCH_*.json` under `results/` is written by
//! [`Table::to_json`], which since the telemetry unification delegates its
//! string encoding to `fm_telemetry::json`. These tests pin the byte
//! format so downstream tooling that parses the result files (plot
//! scripts, CI diffs) never silently breaks: any change to the emitter is
//! an intentional, reviewed change here.

use fm_bench::harness::Table;

#[test]
fn table_json_bytes_are_pinned() {
    let mut t = Table::new("fig14", "End-to-end speedup", &["graph", "pattern", "speedup"]);
    t.push(vec!["mico".into(), "triangle".into(), "10.20x".into()]);
    t.push(vec!["patents".into(), "4-clique".into(), "8.10x".into()]);
    t.note("quick mode");
    assert_eq!(
        t.to_json(),
        r#"{"id":"fig14","title":"End-to-end speedup","headers":["graph","pattern","speedup"],"rows":[["mico","triangle","10.20x"],["patents","4-clique","8.10x"]],"notes":["quick mode"]}"#
    );
}

#[test]
fn table_json_escaping_is_pinned() {
    let mut t = Table::new("esc", "quo\"te\\slash", &["a"]);
    t.push(vec!["line\nbreak\tand\rcontrol\u{1}".into()]);
    assert_eq!(
        t.to_json(),
        "{\"id\":\"esc\",\"title\":\"quo\\\"te\\\\slash\",\"headers\":[\"a\"],\
         \"rows\":[[\"line\\nbreak\\tand\\rcontrol\\u0001\"]],\"notes\":[]}"
    );
}

#[test]
fn empty_table_json_is_pinned() {
    let t = Table::new("empty", "no rows", &[]);
    assert_eq!(
        t.to_json(),
        r#"{"id":"empty","title":"no rows","headers":[],"rows":[],"notes":[]}"#
    );
}
