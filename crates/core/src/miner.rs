//! The mining job builder.

use fm_engine::{EngineConfig, MiningResult, WorkCounters};
use fm_graph::CsrGraph;
use fm_pattern::Pattern;
use fm_plan::{compile_multi, CompileOptions, ExecutionPlan};
use fm_sim::{simulate, SimConfig, SimReport};
use std::fmt;
use std::time::Duration;

/// Where a mining job executes.
#[derive(Clone, PartialEq, Debug)]
pub enum Backend {
    /// The plan-driven software engine (the paper's GraphZero-model CPU
    /// baseline) with the given configuration.
    Software(EngineConfig),
    /// The cycle-level FlexMiner accelerator simulator.
    Accelerator(SimConfig),
}

impl Backend {
    /// Software engine with `threads` worker threads.
    pub fn software(threads: usize) -> Backend {
        Backend::Software(EngineConfig::with_threads(threads))
    }

    /// Accelerator simulator with the paper's default configuration
    /// (20 PEs, 8 kB c-map, 32 kB private caches, 4 MB shared cache).
    pub fn accelerator() -> Backend {
        Backend::Accelerator(SimConfig::default())
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Software(EngineConfig::default())
    }
}

/// Error from assembling or running a mining job.
#[derive(Debug, PartialEq, Eq)]
pub enum MineError {
    /// No pattern was supplied.
    NoPatterns,
    /// Vertex-induced multi-pattern jobs need patterns of one size
    /// (k-motif counting); mixed sizes are ambiguous.
    MixedInducedSizes,
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::NoPatterns => write!(f, "mining job has no patterns"),
            MineError::MixedInducedSizes => {
                write!(f, "vertex-induced jobs require patterns of a single size")
            }
        }
    }
}

impl std::error::Error for MineError {}

/// One pattern's result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PatternCount {
    /// Human-readable pattern name.
    pub name: String,
    /// Unique embeddings found.
    pub count: u64,
}

/// The result of a mining job.
#[derive(Clone, Debug)]
pub struct MiningOutcome {
    per_pattern: Vec<PatternCount>,
    work: Option<WorkCounters>,
    sim: Option<SimReport>,
    elapsed: Duration,
}

impl MiningOutcome {
    /// Unique embedding counts, in pattern order.
    pub fn counts(&self) -> Vec<u64> {
        self.per_pattern.iter().map(|p| p.count).collect()
    }

    /// Count of the first (or only) pattern.
    pub fn count(&self) -> u64 {
        self.per_pattern.first().map_or(0, |p| p.count)
    }

    /// Per-pattern names and counts.
    pub fn per_pattern(&self) -> &[PatternCount] {
        &self.per_pattern
    }

    /// Software work counters (software backend only).
    pub fn work(&self) -> Option<&WorkCounters> {
        self.work.as_ref()
    }

    /// The accelerator simulation report (accelerator backend only).
    pub fn sim_report(&self) -> Option<&SimReport> {
        self.sim.as_ref()
    }

    /// Host wall-clock time of the run. For the software backend this is
    /// the baseline measurement the paper compares against; for the
    /// accelerator backend prefer
    /// [`SimReport::seconds`](fm_sim::SimReport::seconds) (simulated time).
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }
}

/// Builder for mining jobs.
///
/// # Examples
///
/// 3-motif counting on the accelerator:
///
/// ```
/// use flexminer::{Backend, Miner};
/// use fm_graph::generators;
/// use fm_pattern::motifs;
///
/// let g = generators::erdos_renyi(60, 0.15, 3);
/// let outcome = Miner::new(&g)
///     .patterns(motifs::motifs(3))
///     .induced(true)
///     .backend(Backend::accelerator())
///     .run()?;
/// assert_eq!(outcome.per_pattern().len(), 2); // wedge + triangle
/// # Ok::<(), flexminer::MineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Miner<'g> {
    graph: &'g CsrGraph,
    patterns: Vec<Pattern>,
    options: CompileOptions,
    backend: Backend,
}

impl<'g> Miner<'g> {
    /// Starts a mining job on `graph` (software backend, one thread,
    /// edge-induced, symmetry breaking on).
    pub fn new(graph: &'g CsrGraph) -> Miner<'g> {
        Miner {
            graph,
            patterns: Vec::new(),
            options: CompileOptions::default(),
            backend: Backend::default(),
        }
    }

    /// Adds a pattern to mine.
    #[must_use]
    pub fn pattern(mut self, p: Pattern) -> Self {
        self.patterns.push(p);
        self
    }

    /// Adds every pattern from an iterator (multi-pattern mining, §V-B).
    #[must_use]
    pub fn patterns<I: IntoIterator<Item = Pattern>>(mut self, iter: I) -> Self {
        self.patterns.extend(iter);
        self
    }

    /// Selects vertex-induced (`true`) or edge-induced (`false`, default)
    /// matching.
    #[must_use]
    pub fn induced(mut self, induced: bool) -> Self {
        self.options.induced = induced;
        self
    }

    /// Toggles symmetry breaking. Disabling models AutoMine's larger
    /// search space; counts remain unique (normalized by |Aut(P)|).
    #[must_use]
    pub fn symmetry(mut self, symmetry: bool) -> Self {
        self.options.symmetry = symmetry;
        if !symmetry {
            self.options.orientation = false;
        }
        self
    }

    /// Selects the execution backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand: software backend with `n` threads.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.backend = Backend::software(n);
        self
    }

    /// Compiles and returns the execution plan for inspection (the IR that
    /// would be loaded into the hardware; printable in Listing-1 style).
    ///
    /// # Errors
    ///
    /// Same validation as [`run`](Self::run).
    pub fn plan(&self) -> Result<ExecutionPlan, MineError> {
        self.validate()?;
        // Single-pattern jobs go through `compile`, so cliques get the
        // orientation special case (§V-C).
        if self.patterns.len() == 1 {
            Ok(fm_plan::compile(&self.patterns[0], self.options))
        } else {
            Ok(compile_multi(&self.patterns, self.options))
        }
    }

    fn validate(&self) -> Result<(), MineError> {
        if self.patterns.is_empty() {
            return Err(MineError::NoPatterns);
        }
        if self.options.induced && self.patterns.len() > 1 {
            let k = self.patterns[0].size();
            if self.patterns.iter().any(|p| p.size() != k) {
                return Err(MineError::MixedInducedSizes);
            }
        }
        Ok(())
    }

    /// Runs the job.
    ///
    /// # Errors
    ///
    /// Returns [`MineError::NoPatterns`] for an empty job and
    /// [`MineError::MixedInducedSizes`] for invalid induced jobs.
    pub fn run(&self) -> Result<MiningOutcome, MineError> {
        let plan = self.plan()?;
        let start = std::time::Instant::now();
        let (raw, work, sim): (Vec<u64>, Option<WorkCounters>, Option<SimReport>) = match &self
            .backend
        {
            Backend::Software(cfg) => {
                let result: MiningResult = fm_engine::mine(self.graph, &plan, cfg);
                (result.unique_counts(&plan), Some(result.work), None)
            }
            Backend::Accelerator(cfg) => {
                let report = simulate(self.graph, &plan, cfg);
                let result =
                    MiningResult { counts: report.counts.clone(), work: WorkCounters::default() };
                (result.unique_counts(&plan), None, Some(report))
            }
        };
        let elapsed = start.elapsed();
        let per_pattern = plan
            .patterns
            .iter()
            .zip(raw)
            .map(|(meta, count)| PatternCount { name: meta.name.clone(), count })
            .collect();
        Ok(MiningOutcome { per_pattern, work, sim, elapsed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::generators;

    #[test]
    fn empty_job_is_rejected() {
        let g = generators::complete(3);
        assert_eq!(Miner::new(&g).run().unwrap_err(), MineError::NoPatterns);
    }

    #[test]
    fn mixed_induced_sizes_are_rejected() {
        let g = generators::complete(4);
        let err = Miner::new(&g)
            .pattern(Pattern::triangle())
            .pattern(Pattern::k_clique(4))
            .induced(true)
            .run()
            .unwrap_err();
        assert_eq!(err, MineError::MixedInducedSizes);
        // Edge-induced multi-pattern jobs of mixed sizes are fine.
        assert!(Miner::new(&g)
            .pattern(Pattern::triangle())
            .pattern(Pattern::k_clique(4))
            .run()
            .is_ok());
    }

    #[test]
    fn backends_agree_and_report_their_extras() {
        let g = generators::powerlaw_cluster(150, 4, 0.5, 2);
        let job = Miner::new(&g).pattern(Pattern::diamond());
        let sw = job.clone().run().unwrap();
        let hw = job.clone().backend(Backend::accelerator()).run().unwrap();
        let par = job.clone().threads(4).run().unwrap();
        assert_eq!(sw.counts(), hw.counts());
        assert_eq!(sw.counts(), par.counts());
        assert!(sw.work().is_some() && sw.sim_report().is_none());
        assert!(hw.work().is_none() && hw.sim_report().is_some());
    }

    #[test]
    fn symmetry_toggle_preserves_unique_counts() {
        let g = generators::erdos_renyi(50, 0.2, 9);
        let with = Miner::new(&g).pattern(Pattern::triangle()).run().unwrap();
        let without = Miner::new(&g).pattern(Pattern::triangle()).symmetry(false).run().unwrap();
        assert_eq!(with.counts(), without.counts());
    }

    #[test]
    fn plan_is_inspectable() {
        let g = generators::complete(4);
        let plan = Miner::new(&g).pattern(Pattern::cycle(4)).plan().unwrap();
        let text = plan.to_string();
        assert!(text.contains("pruneBy"));
    }

    #[test]
    fn outcome_accessors() {
        let g = generators::complete(5);
        let outcome = Miner::new(&g).pattern(Pattern::triangle()).run().unwrap();
        assert_eq!(outcome.count(), 10);
        assert_eq!(outcome.per_pattern()[0].name, "triangle");
        assert_eq!(outcome.counts(), vec![10]);
    }
}
