//! The mining job builder.

use fm_engine::{
    Budget, CancelToken, Checkpoint, CheckpointConfig, CheckpointError, EngineConfig, Fault,
    MiningResult, Recovery, RunStatus, Straggler, TelemetryOptions, WorkCounters,
};
use fm_graph::CsrGraph;
use fm_pattern::Pattern;
use fm_plan::{compile_multi, CompileOptions, ExecutionPlan};
use fm_sim::{simulate, SimConfig, SimReport, WatchdogDump};
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Combines two budgets: each limit is the tighter of the pair.
fn merge_budgets(a: Budget, b: Budget) -> Budget {
    fn tighter<T: Ord>(x: Option<T>, y: Option<T>) -> Option<T> {
        match (x, y) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }
    Budget {
        deadline: tighter(a.deadline, b.deadline),
        max_setop_iterations: tighter(a.max_setop_iterations, b.max_setop_iterations),
    }
}

/// Where a mining job executes.
#[derive(Clone, PartialEq, Debug)]
pub enum Backend {
    /// The plan-driven software engine (the paper's GraphZero-model CPU
    /// baseline) with the given configuration.
    Software(EngineConfig),
    /// The cycle-level FlexMiner accelerator simulator.
    Accelerator(SimConfig),
}

impl Backend {
    /// Software engine with `threads` worker threads.
    pub fn software(threads: usize) -> Backend {
        Backend::Software(EngineConfig::with_threads(threads))
    }

    /// Accelerator simulator with the paper's default configuration
    /// (20 PEs, 8 kB c-map, 32 kB private caches, 4 MB shared cache).
    pub fn accelerator() -> Backend {
        Backend::Accelerator(SimConfig::default())
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Software(EngineConfig::default())
    }
}

/// Error from assembling or running a mining job.
#[derive(Debug, PartialEq, Eq)]
pub enum MineError {
    /// No pattern was supplied.
    NoPatterns,
    /// Vertex-induced multi-pattern jobs need patterns of one size
    /// (k-motif counting); mixed sizes are ambiguous.
    MixedInducedSizes,
    /// A deadline, budget, cancel token, checkpoint path, or resume
    /// snapshot was supplied for the accelerator backend, whose only
    /// supported control is the watchdog cycle cap
    /// ([`SimConfig::watchdog_cycles`]).
    ControlUnsupported,
    /// The accelerator watchdog tripped before the simulation drained;
    /// per-PE FSM state is attached for diagnosis.
    WatchdogTripped(Box<WatchdogDump>),
    /// A partial run's raw counts cannot be normalized into unique counts:
    /// with symmetry breaking disabled each embedding is found |Aut(P)|
    /// times, and an early stop can cut through an automorphism class.
    /// Retry with symmetry breaking on, or without a budget.
    PartialUnnormalizable {
        /// How the run actually stopped.
        status: RunStatus,
    },
    /// A resume checkpoint could not be loaded, or records a different
    /// graph/plan/config than this job (the engine refuses to produce a
    /// silently wrong count — see [`fm_engine::Checkpoint::validate`]).
    Checkpoint(CheckpointError),
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::NoPatterns => write!(f, "mining job has no patterns"),
            MineError::MixedInducedSizes => {
                write!(f, "vertex-induced jobs require patterns of a single size")
            }
            MineError::ControlUnsupported => {
                write!(
                    f,
                    "the accelerator backend does not support deadlines, budgets, \
                     cancellation, or checkpoint/resume; use the watchdog cycle cap instead"
                )
            }
            MineError::WatchdogTripped(dump) => {
                write!(
                    f,
                    "accelerator watchdog tripped at {} cycles with {} PE(s) still working",
                    dump.cap,
                    dump.stuck_pes().count()
                )
            }
            MineError::PartialUnnormalizable { status } => {
                write!(
                    f,
                    "partial run ({status:?}) cannot be normalized by |Aut(P)| without \
                     symmetry breaking"
                )
            }
            MineError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MineError {}

/// One pattern's result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PatternCount {
    /// Human-readable pattern name.
    pub name: String,
    /// Unique embeddings found.
    pub count: u64,
}

/// The result of a mining job.
#[derive(Clone, Debug)]
pub struct MiningOutcome {
    per_pattern: Vec<PatternCount>,
    work: Option<WorkCounters>,
    sim: Option<SimReport>,
    elapsed: Duration,
    status: RunStatus,
    completed: Vec<u32>,
    faults: Vec<Fault>,
    quarantined: Vec<Fault>,
    stragglers: Vec<Straggler>,
    checkpoint_error: Option<String>,
    checkpoint_failures: u64,
    telemetry: Option<Box<fm_telemetry::TelemetryShard>>,
}

impl MiningOutcome {
    /// How the run ended. Anything but [`RunStatus::Complete`] means the
    /// counts are exact over a subset of start vertices only.
    pub fn status(&self) -> RunStatus {
        self.status
    }

    /// Whether every start vertex was mined without faults.
    pub fn is_complete(&self) -> bool {
        self.status.is_complete()
    }

    /// Start vertices whose subtrees completed, ascending. Empty on a
    /// fault-free complete run (meaning: all of them).
    pub fn completed_start_vertices(&self) -> &[u32] {
        &self.completed
    }

    /// Every isolated task panic, one record per attempt (software backend
    /// only). Non-empty on a *complete* run only when a transient fault
    /// healed on a retry (see [`Miner::max_retries`]).
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Start vertices abandoned after exhausting the retry budget
    /// (software backend only). Non-empty iff the run is
    /// [`RunStatus::Degraded`] (or a harsher stop masked it).
    pub fn quarantined(&self) -> &[Fault] {
        &self.quarantined
    }

    /// Tasks that ran far slower than the run's median task — the
    /// load-imbalance observability report (software backend only; see
    /// [`fm_engine::Straggler`]).
    pub fn stragglers(&self) -> &[Straggler] {
        &self.stragglers
    }

    /// Last periodic checkpoint-write failure, if any. Mining never stops
    /// because durability did, but a resume may replay more work than the
    /// configured interval promised.
    pub fn checkpoint_error(&self) -> Option<&str> {
        self.checkpoint_error.as_deref()
    }

    /// Total checkpoint-write attempts that failed over the run, counting
    /// every retry of the capped-backoff write path — non-zero even when
    /// a later retry succeeded and [`checkpoint_error`](Self::checkpoint_error)
    /// is clear.
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures
    }

    /// Unique embedding counts, in pattern order.
    pub fn counts(&self) -> Vec<u64> {
        self.per_pattern.iter().map(|p| p.count).collect()
    }

    /// Count of the first (or only) pattern.
    pub fn count(&self) -> u64 {
        self.per_pattern.first().map_or(0, |p| p.count)
    }

    /// Per-pattern names and counts.
    pub fn per_pattern(&self) -> &[PatternCount] {
        &self.per_pattern
    }

    /// Software work counters (software backend only).
    pub fn work(&self) -> Option<&WorkCounters> {
        self.work.as_ref()
    }

    /// The accelerator simulation report (accelerator backend only).
    pub fn sim_report(&self) -> Option<&SimReport> {
        self.sim.as_ref()
    }

    /// The merged telemetry shard (software backend with
    /// [`Miner::telemetry`] enabled only): depth-resolved work metrics,
    /// task/frontier histograms, and trace spans.
    pub fn telemetry(&self) -> Option<&fm_telemetry::TelemetryShard> {
        self.telemetry.as_deref()
    }

    /// Host wall-clock time of the run. For the software backend this is
    /// the baseline measurement the paper compares against; for the
    /// accelerator backend prefer
    /// [`SimReport::seconds`](fm_sim::SimReport::seconds) (simulated time).
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }
}

/// Builder for mining jobs.
///
/// # Examples
///
/// 3-motif counting on the accelerator:
///
/// ```
/// use flexminer::{Backend, Miner};
/// use fm_graph::generators;
/// use fm_pattern::motifs;
///
/// let g = generators::erdos_renyi(60, 0.15, 3);
/// let outcome = Miner::new(&g)
///     .patterns(motifs::motifs(3))
///     .induced(true)
///     .backend(Backend::accelerator())
///     .run()?;
/// assert_eq!(outcome.per_pattern().len(), 2); // wedge + triangle
/// # Ok::<(), flexminer::MineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Miner<'g> {
    graph: &'g CsrGraph,
    patterns: Vec<Pattern>,
    options: CompileOptions,
    backend: Backend,
    budget: Budget,
    cancel: Option<CancelToken>,
    checkpoint: Option<CheckpointConfig>,
    resume: Option<PathBuf>,
    telemetry: TelemetryOptions,
}

impl<'g> Miner<'g> {
    /// Starts a mining job on `graph` (software backend, one thread,
    /// edge-induced, symmetry breaking on, unlimited budget).
    pub fn new(graph: &'g CsrGraph) -> Miner<'g> {
        Miner {
            graph,
            patterns: Vec::new(),
            options: CompileOptions::default(),
            backend: Backend::default(),
            budget: Budget::unlimited(),
            cancel: None,
            checkpoint: None,
            resume: None,
            telemetry: TelemetryOptions::default(),
        }
    }

    /// Adds a pattern to mine.
    #[must_use]
    pub fn pattern(mut self, p: Pattern) -> Self {
        self.patterns.push(p);
        self
    }

    /// Adds every pattern from an iterator (multi-pattern mining, §V-B).
    #[must_use]
    pub fn patterns<I: IntoIterator<Item = Pattern>>(mut self, iter: I) -> Self {
        self.patterns.extend(iter);
        self
    }

    /// Selects vertex-induced (`true`) or edge-induced (`false`, default)
    /// matching.
    #[must_use]
    pub fn induced(mut self, induced: bool) -> Self {
        self.options.induced = induced;
        self
    }

    /// Toggles symmetry breaking. Disabling models AutoMine's larger
    /// search space; counts remain unique (normalized by |Aut(P)|).
    #[must_use]
    pub fn symmetry(mut self, symmetry: bool) -> Self {
        self.options.symmetry = symmetry;
        if !symmetry {
            self.options.orientation = false;
        }
        self
    }

    /// Selects the execution backend.
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand: software backend with `n` threads.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.backend = Backend::software(n);
        self
    }

    /// Toggles the hub-bitmap probe index on the software backend (see
    /// [`EngineConfig::hub_bitmap`]). No-op for the accelerator backend —
    /// the simulated SIU/SDU merge datapath has no probe port.
    #[must_use]
    pub fn hub_bitmap(mut self, enabled: bool) -> Self {
        if let Backend::Software(cfg) = &mut self.backend {
            cfg.hub_bitmap = enabled;
        }
        self
    }

    /// Toggles the vectorized set-op kernel tier on the software backend
    /// (see [`EngineConfig::simd`]). Counts, status, and all non-dispatch
    /// work counters are identical either way; merge-tier dispatches are
    /// relabeled as SIMD dispatches when on. No-op for the accelerator
    /// backend, whose merge datapath is cycle-modeled, not executed.
    #[must_use]
    pub fn simd(mut self, enabled: bool) -> Self {
        if let Backend::Software(cfg) = &mut self.backend {
            cfg.simd = enabled;
        }
        self
    }

    /// Toggles the intersection-reuse tier on the software backend (see
    /// [`EngineConfig::reuse`]): plan-proven sibling-invariant prefixes
    /// are cached per worker and deep extensions probe them instead of
    /// re-deriving the intersection. Counts and status are identical
    /// either way; served dispatches are relabeled from their adaptive
    /// tier to `reuse_hits`. No-op for the accelerator backend.
    #[must_use]
    pub fn reuse(mut self, enabled: bool) -> Self {
        if let Backend::Software(cfg) = &mut self.backend {
            cfg.reuse = enabled;
        }
        self
    }

    /// Sets the per-worker reuse-arena byte budget (software backend
    /// only; see [`EngineConfig::reuse_memory_budget`]). A budget of 0
    /// disables the tier exactly like [`reuse(false)`](Self::reuse).
    #[must_use]
    pub fn reuse_budget(mut self, bytes: usize) -> Self {
        if let Backend::Software(cfg) = &mut self.backend {
            cfg.reuse_memory_budget = bytes;
        }
        self
    }

    /// Sets the hub selection degree threshold and memory budget in bytes
    /// (software backend only; see [`EngineConfig::hub_degree_threshold`]
    /// and [`EngineConfig::hub_memory_budget`]).
    #[must_use]
    pub fn hub_limits(mut self, degree_threshold: usize, memory_budget: usize) -> Self {
        if let Backend::Software(cfg) = &mut self.backend {
            cfg.hub_degree_threshold = degree_threshold;
            cfg.hub_memory_budget = memory_budget;
        }
        self
    }

    /// Writes periodic durable [`Checkpoint`](fm_engine::Checkpoint)
    /// snapshots to `path` (software backend only; the accelerator backend
    /// rejects it with [`MineError::ControlUnsupported`]). The default
    /// cadence — every 256 completed start-vertex tasks or 10 seconds,
    /// whichever fires first — can be changed with
    /// [`checkpoint_interval`](Self::checkpoint_interval). Snapshots are
    /// written atomically (temp file + fsync + rename), so an interrupted
    /// job can always [`resume_from`](Self::resume_from) the last one.
    #[must_use]
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(CheckpointConfig::new(path));
        self
    }

    /// Adjusts the checkpoint cadence set by
    /// [`checkpoint_to`](Self::checkpoint_to): write after `every_tasks`
    /// completed tasks (`None`/0 disables the count trigger) and/or after
    /// `every_wall` of wall-clock time (`None` disables). No-op unless a
    /// checkpoint path is set.
    #[must_use]
    pub fn checkpoint_interval(
        mut self,
        every_tasks: Option<u64>,
        every_wall: Option<Duration>,
    ) -> Self {
        if let Some(ckpt) = &mut self.checkpoint {
            ckpt.every_tasks = every_tasks.unwrap_or(0);
            ckpt.every_wall = every_wall;
        }
        self
    }

    /// Resumes from the checkpoint file at `path` (software backend only):
    /// already-completed start vertices are skipped and their contribution
    /// seeded from the snapshot, so the final counts are bit-identical to
    /// an uninterrupted run. The snapshot must record the same graph,
    /// plan, and count-relevant engine knobs — a mismatch fails with
    /// [`MineError::Checkpoint`], never a wrong count. Combine with
    /// [`checkpoint_to`](Self::checkpoint_to) (typically the same path) so
    /// the resumed run keeps checkpointing.
    #[must_use]
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Retries a faulted start-vertex task up to `k` times before
    /// quarantining it (software backend only; see
    /// [`EngineConfig::max_retries`]). With the default `0` a single fault
    /// degrades the run; with retries a transient fault self-heals and the
    /// run stays [`RunStatus::Complete`], the attempt still recorded in
    /// [`MiningOutcome::faults`].
    #[must_use]
    pub fn max_retries(mut self, k: u32) -> Self {
        if let Backend::Software(cfg) = &mut self.backend {
            cfg.max_retries = k;
        }
        self
    }

    /// Enables telemetry collection on the software backend (see
    /// [`TelemetryOptions`]): depth/tier metrics and histograms, Chrome
    /// trace spans, and/or live progress reporting. The default (all off)
    /// keeps the run bit-identical to an uninstrumented one; the merged
    /// shard is returned via [`MiningOutcome::telemetry`]. No-op for the
    /// accelerator backend, whose observability lives in
    /// [`SimReport`] (set [`SimConfig::timeline_every`] for timelines).
    #[must_use]
    pub fn telemetry(mut self, options: TelemetryOptions) -> Self {
        self.telemetry = options;
        self
    }

    /// Applies a resource [`Budget`] (software backend only). Limits
    /// combine with any already set — each takes the tighter value — so a
    /// budget on the job and one on the `EngineConfig` both hold.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = merge_budgets(self.budget, budget);
        self
    }

    /// Shorthand: wall-clock deadline `timeout` from now. Note the
    /// deadline starts ticking *here*, not at [`run`](Self::run); prefer
    /// [`run_with_deadline`](Self::run_with_deadline) unless the build and
    /// run happen together.
    #[must_use]
    pub fn timeout(self, timeout: Duration) -> Self {
        self.budget(Budget::with_timeout(timeout))
    }

    /// Attaches a cancellation handle (software backend only). Keep a
    /// clone of the token; calling [`CancelToken::cancel`] from any thread
    /// stops the job at its next start-vertex boundary with exact partial
    /// counts.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Compiles and returns the execution plan for inspection (the IR that
    /// would be loaded into the hardware; printable in Listing-1 style).
    ///
    /// # Errors
    ///
    /// Same validation as [`run`](Self::run).
    pub fn plan(&self) -> Result<ExecutionPlan, MineError> {
        self.validate()?;
        // Single-pattern jobs go through `compile`, so cliques get the
        // orientation special case (§V-C).
        if self.patterns.len() == 1 {
            Ok(fm_plan::compile(&self.patterns[0], self.options))
        } else {
            Ok(compile_multi(&self.patterns, self.options))
        }
    }

    fn validate(&self) -> Result<(), MineError> {
        if self.patterns.is_empty() {
            return Err(MineError::NoPatterns);
        }
        if self.options.induced && self.patterns.len() > 1 {
            let k = self.patterns[0].size();
            if self.patterns.iter().any(|p| p.size() != k) {
                return Err(MineError::MixedInducedSizes);
            }
        }
        Ok(())
    }

    /// Runs the job.
    ///
    /// A run stopped early by a deadline, budget, cancellation, or an
    /// isolated task panic still returns `Ok`: the outcome's
    /// [`status`](MiningOutcome::status) reports how it ended and the
    /// counts are exact over
    /// [`completed_start_vertices`](MiningOutcome::completed_start_vertices).
    ///
    /// # Errors
    ///
    /// Returns [`MineError::NoPatterns`] for an empty job,
    /// [`MineError::MixedInducedSizes`] for invalid induced jobs,
    /// [`MineError::ControlUnsupported`] when a budget or cancel token is
    /// combined with the accelerator backend,
    /// [`MineError::WatchdogTripped`] when the accelerator watchdog fires,
    /// and [`MineError::PartialUnnormalizable`] when a partial
    /// non-symmetry run cannot be normalized into unique counts.
    pub fn run(&self) -> Result<MiningOutcome, MineError> {
        let plan = self.plan()?;
        let start = std::time::Instant::now();
        let (result, work, sim): (MiningResult, Option<WorkCounters>, Option<SimReport>) =
            match &self.backend {
                Backend::Software(cfg) => {
                    let mut cfg = *cfg;
                    cfg.budget = merge_budgets(cfg.budget, self.budget);
                    let cancel = self.cancel.as_ref();
                    // One funnel for every software job: resume snapshots
                    // load here, then recovery + telemetry ride together
                    // through `mine_observed` (the engine's fully-general
                    // entry point — identical to `mine` when both are off).
                    let resume = self
                        .resume
                        .as_deref()
                        .map(Checkpoint::load)
                        .transpose()
                        .map_err(MineError::Checkpoint)?;
                    let recovery = Recovery { checkpoint: self.checkpoint.clone(), resume };
                    let result = fm_engine::mine_observed(
                        self.graph,
                        &plan,
                        &cfg,
                        cancel,
                        recovery,
                        &self.telemetry,
                    )
                    .map_err(MineError::Checkpoint)?;
                    let work = result.work;
                    (result, Some(work), None)
                }
                Backend::Accelerator(cfg) => {
                    if self.budget.is_limited()
                        || self.cancel.is_some()
                        || self.checkpoint.is_some()
                        || self.resume.is_some()
                    {
                        return Err(MineError::ControlUnsupported);
                    }
                    let report = simulate(self.graph, &plan, cfg);
                    if let Some(dump) = &report.watchdog {
                        return Err(MineError::WatchdogTripped(Box::new(dump.clone())));
                    }
                    let result =
                        MiningResult { counts: report.counts.clone(), ..Default::default() };
                    (result, None, Some(report))
                }
            };
        let elapsed = start.elapsed();
        let raw = result
            .try_unique_counts(&plan)
            .ok_or(MineError::PartialUnnormalizable { status: result.status })?;
        let per_pattern = plan
            .patterns
            .iter()
            .zip(raw)
            .map(|(meta, count)| PatternCount { name: meta.name.clone(), count })
            .collect();
        Ok(MiningOutcome {
            per_pattern,
            work,
            sim,
            elapsed,
            status: result.status,
            completed: result.completed,
            faults: result.faults,
            quarantined: result.quarantined,
            stragglers: result.stragglers,
            checkpoint_error: result.checkpoint_error,
            checkpoint_failures: result.checkpoint_failures,
            telemetry: result.telemetry,
        })
    }

    /// Runs the job with a wall-clock deadline of `timeout` from *now*.
    ///
    /// Equivalent to `self.clone().timeout(timeout).run()`, with the
    /// deadline anchored at the call instead of at builder time.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_deadline(&self, timeout: Duration) -> Result<MiningOutcome, MineError> {
        let mut job = self.clone();
        job.budget = merge_budgets(job.budget, Budget::with_timeout(timeout));
        job.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::generators;

    #[test]
    fn empty_job_is_rejected() {
        let g = generators::complete(3);
        assert_eq!(Miner::new(&g).run().unwrap_err(), MineError::NoPatterns);
    }

    #[test]
    fn mixed_induced_sizes_are_rejected() {
        let g = generators::complete(4);
        let err = Miner::new(&g)
            .pattern(Pattern::triangle())
            .pattern(Pattern::k_clique(4))
            .induced(true)
            .run()
            .unwrap_err();
        assert_eq!(err, MineError::MixedInducedSizes);
        // Edge-induced multi-pattern jobs of mixed sizes are fine.
        assert!(Miner::new(&g)
            .pattern(Pattern::triangle())
            .pattern(Pattern::k_clique(4))
            .run()
            .is_ok());
    }

    #[test]
    fn backends_agree_and_report_their_extras() {
        let g = generators::powerlaw_cluster(150, 4, 0.5, 2);
        let job = Miner::new(&g).pattern(Pattern::diamond());
        let sw = job.clone().run().unwrap();
        let hw = job.clone().backend(Backend::accelerator()).run().unwrap();
        let par = job.clone().threads(4).run().unwrap();
        assert_eq!(sw.counts(), hw.counts());
        assert_eq!(sw.counts(), par.counts());
        assert!(sw.work().is_some() && sw.sim_report().is_none());
        assert!(hw.work().is_none() && hw.sim_report().is_some());
    }

    #[test]
    fn hub_bitmap_toggle_preserves_counts_and_is_inert_on_accelerator() {
        let g = generators::attach_hubs(&generators::powerlaw_cluster(150, 4, 0.5, 8), 3, 90, 5);
        let job = Miner::new(&g).pattern(Pattern::cycle(4)).hub_limits(32, 1 << 22);
        let on = job.clone().hub_bitmap(true).run().unwrap();
        let off = job.clone().hub_bitmap(false).run().unwrap();
        assert_eq!(on.counts(), off.counts());
        assert!(on.work().unwrap().probe_dispatches > 0, "hubs of degree 90 must probe");
        assert_eq!(off.work().unwrap().probe_dispatches, 0);
        // The accelerator backend has no probe port; the toggle is a no-op.
        let hw = job.backend(Backend::accelerator()).hub_bitmap(true).run().unwrap();
        assert_eq!(hw.counts(), on.counts());
    }

    #[test]
    fn simd_toggle_relabels_merge_dispatches_only() {
        let g = generators::powerlaw_cluster(150, 4, 0.5, 8);
        let job = Miner::new(&g).pattern(Pattern::cycle(4));
        let on = job.clone().simd(true).run().unwrap();
        let off = job.clone().simd(false).run().unwrap();
        assert_eq!(on.counts(), off.counts());
        let (won, woff) = (on.work().unwrap(), off.work().unwrap());
        if fm_engine::simd::runtime_available() {
            assert_eq!(won.simd_dispatches, woff.merge_dispatches);
            assert_eq!(won.merge_dispatches, 0);
        }
        assert_eq!(woff.simd_dispatches, 0);
        assert_eq!(won.setop_iterations, woff.setop_iterations);
        assert_eq!(won.comparisons, woff.comparisons);
        // The accelerator backend cycle-models its merges; the toggle is a
        // no-op there.
        let hw = job.backend(Backend::accelerator()).simd(true).run().unwrap();
        assert_eq!(hw.counts(), on.counts());
    }

    #[test]
    fn reuse_toggle_preserves_counts_and_relabels_dispatches() {
        let g = generators::powerlaw_cluster(150, 4, 0.5, 8);
        let job = Miner::new(&g).pattern(Pattern::cycle(4));
        let on = job.clone().reuse(true).run().unwrap();
        let off = job.clone().reuse(false).run().unwrap();
        assert_eq!(on.counts(), off.counts());
        let (won, woff) = (on.work().unwrap(), off.work().unwrap());
        assert!(won.reuse_hits > 0, "4-cycle hoists a sibling-invariant prefix");
        assert_eq!(woff.reuse_hits, 0);
        assert_eq!(woff.prefix_builds, 0);
        assert_eq!(won.extensions, woff.extensions);
        // A zero-byte budget disables the tier bit-for-bit.
        let zero = job.clone().reuse_budget(0).run().unwrap();
        assert_eq!(zero.counts(), off.counts());
        assert_eq!(*zero.work().unwrap(), *woff);
        // The accelerator backend cycle-models its merges; the toggle is
        // a no-op there.
        let hw = job.backend(Backend::accelerator()).reuse(true).run().unwrap();
        assert_eq!(hw.counts(), on.counts());
    }

    #[test]
    fn symmetry_toggle_preserves_unique_counts() {
        let g = generators::erdos_renyi(50, 0.2, 9);
        let with = Miner::new(&g).pattern(Pattern::triangle()).run().unwrap();
        let without = Miner::new(&g).pattern(Pattern::triangle()).symmetry(false).run().unwrap();
        assert_eq!(with.counts(), without.counts());
    }

    #[test]
    fn plan_is_inspectable() {
        let g = generators::complete(4);
        let plan = Miner::new(&g).pattern(Pattern::cycle(4)).plan().unwrap();
        let text = plan.to_string();
        assert!(text.contains("pruneBy"));
    }

    #[test]
    fn outcome_accessors() {
        let g = generators::complete(5);
        let outcome = Miner::new(&g).pattern(Pattern::triangle()).run().unwrap();
        assert_eq!(outcome.count(), 10);
        assert_eq!(outcome.per_pattern()[0].name, "triangle");
        assert_eq!(outcome.counts(), vec![10]);
        assert!(outcome.is_complete());
        assert_eq!(outcome.status(), fm_engine::RunStatus::Complete);
        assert!(outcome.faults().is_empty());
        assert!(outcome.completed_start_vertices().is_empty());
    }

    #[test]
    fn merged_budgets_take_the_tighter_limit() {
        let a = Budget::with_max_setop_iterations(100);
        let b = Budget::with_max_setop_iterations(7);
        assert_eq!(merge_budgets(a, b).max_setop_iterations, Some(7));
        assert_eq!(merge_budgets(b, Budget::unlimited()).max_setop_iterations, Some(7));
        let t = Budget::with_timeout(Duration::from_secs(1));
        let merged = merge_budgets(t, b);
        assert_eq!(merged.deadline, t.deadline);
        assert_eq!(merged.max_setop_iterations, Some(7));
    }

    #[test]
    fn zero_deadline_reports_deadline_exceeded() {
        let g = generators::powerlaw_cluster(200, 4, 0.5, 6);
        let full = Miner::new(&g).pattern(Pattern::triangle()).run().unwrap();
        for threads in [1, 4] {
            let partial = Miner::new(&g)
                .pattern(Pattern::triangle())
                .threads(threads)
                .run_with_deadline(Duration::ZERO)
                .unwrap();
            assert_eq!(partial.status(), fm_engine::RunStatus::DeadlineExceeded);
            assert!(!partial.is_complete());
            assert!(partial.count() <= full.count());
        }
    }

    #[test]
    fn cancelled_token_stops_the_job() {
        let g = generators::powerlaw_cluster(150, 4, 0.5, 4);
        let token = fm_engine::CancelToken::new();
        token.cancel();
        let outcome =
            Miner::new(&g).pattern(Pattern::triangle()).cancel_token(token).run().unwrap();
        assert_eq!(outcome.status(), fm_engine::RunStatus::Cancelled);
        assert_eq!(outcome.count(), 0);
        assert!(outcome.completed_start_vertices().is_empty());
    }

    #[test]
    fn accelerator_rejects_software_job_control() {
        let g = generators::complete(4);
        let job = Miner::new(&g)
            .pattern(Pattern::triangle())
            .backend(Backend::accelerator())
            .timeout(Duration::from_secs(60));
        assert_eq!(job.run().unwrap_err(), MineError::ControlUnsupported);
        let token = fm_engine::CancelToken::new();
        let job = Miner::new(&g)
            .pattern(Pattern::triangle())
            .backend(Backend::accelerator())
            .cancel_token(token);
        assert_eq!(job.run().unwrap_err(), MineError::ControlUnsupported);
    }

    #[test]
    fn accelerator_watchdog_trip_is_a_structured_error() {
        let g = generators::powerlaw_cluster(300, 5, 0.5, 17);
        let cfg = fm_sim::SimConfig { watchdog_cycles: 1, num_pes: 1, ..Default::default() };
        let err = Miner::new(&g)
            .pattern(Pattern::k_clique(4))
            .backend(Backend::Accelerator(cfg))
            .run()
            .unwrap_err();
        match err {
            MineError::WatchdogTripped(dump) => {
                assert_eq!(dump.cap, 1);
                assert!(dump.stuck_pes().count() > 0);
            }
            other => panic!("expected WatchdogTripped, got {other:?}"),
        }
    }
}
