//! Unified run reports: one metrics document and one Chrome-trace JSON
//! per run, for both backends.
//!
//! Every machine-readable export of the workspace funnels through
//! [`fm_telemetry`]: the CLI's `--metrics-out` writes a [`MetricsDoc`]
//! (Prometheus text or JSON by file extension), `--trace-out` writes
//! `chrome://tracing` / Perfetto JSON. The builders here are pure — they
//! read a finished [`MiningOutcome`] and never touch the mining path.

use crate::miner::MiningOutcome;
use fm_sim::{SimConfig, SimReport, FSM_STATE_NAMES};
use fm_telemetry::{chrome_trace_json, CounterEvent, MetricsDoc};
use std::path::Path;

/// Adds a depth-labelled counter vector (`{depth="0"}, {depth="1"}, …`).
fn depth_counter(doc: &mut MetricsDoc, name: &str, help: &str, values: &[u64]) {
    let labels: Vec<String> = (0..values.len()).map(|d| d.to_string()).collect();
    let pairs: Vec<[(&str, &str); 1]> = labels.iter().map(|d| [("depth", d.as_str())]).collect();
    let rows: Vec<(&[(&str, &str)], u64)> =
        pairs.iter().zip(values).map(|(p, &v)| (p.as_slice(), v)).collect();
    doc.counter_vec(name, help, &rows);
}

/// Shared run-outcome metrics (counts, status, robustness rosters) added
/// to both backends' documents.
fn outcome_metrics(doc: &mut MetricsDoc, outcome: &MiningOutcome) {
    let names: Vec<&str> = outcome.per_pattern().iter().map(|p| p.name.as_str()).collect();
    let pairs: Vec<[(&str, &str); 1]> = names.iter().map(|n| [("pattern", *n)]).collect();
    let rows: Vec<(&[(&str, &str)], u64)> =
        pairs.iter().zip(outcome.per_pattern()).map(|(p, pc)| (p.as_slice(), pc.count)).collect();
    doc.counter_vec("fm_pattern_count", "Unique embeddings found per pattern", &rows);
    doc.gauge_vec(
        "fm_run_status",
        "Run status (1 on the label matching how the run ended)",
        &[(&[("status", outcome.status().as_str())], 1.0)],
    );
    doc.gauge("fm_run_complete", "1 iff every start vertex completed fault-free", {
        if outcome.is_complete() {
            1.0
        } else {
            0.0
        }
    });
    doc.gauge(
        "fm_run_elapsed_seconds",
        "Host wall-clock time of the run",
        outcome.elapsed().as_secs_f64(),
    );
    doc.counter(
        "fm_faults",
        "Isolated task panics (one per attempt)",
        outcome.faults().len() as u64,
    );
    doc.counter(
        "fm_quarantined_tasks",
        "Start vertices abandoned after exhausting retries",
        outcome.quarantined().len() as u64,
    );
    doc.counter(
        "fm_stragglers",
        "Tasks flagged far slower than the run median",
        outcome.stragglers().len() as u64,
    );
    doc.gauge(
        "fm_checkpoint_write_failed",
        "1 iff periodic checkpointing stopped on a write error",
        if outcome.checkpoint_error().is_some() { 1.0 } else { 0.0 },
    );
    doc.counter(
        "fm_checkpoint_write_failures",
        "Failed checkpoint-write attempts (including retries that later healed)",
        outcome.checkpoint_failures(),
    );
    doc.counter(
        "fm_progress_dropped",
        "Progress reports skipped because the emitter lock was contended",
        outcome.telemetry().map_or(0, |s| s.progress_dropped),
    );
}

/// Builds the metrics document for a software-backend run: outcome and
/// aggregate [`WorkCounters`](fm_engine::WorkCounters) always; depth- and
/// tier-resolved series plus task/frontier histograms when the run was
/// executed with [`TelemetryOptions::metrics`](fm_engine::TelemetryOptions)
/// enabled.
pub fn engine_metrics(outcome: &MiningOutcome) -> MetricsDoc {
    let mut doc = MetricsDoc::new();
    outcome_metrics(&mut doc, outcome);
    if let Some(w) = outcome.work() {
        doc.counter("fm_extensions", "Embedding extensions (search-tree edges)", w.extensions);
        doc.counter("fm_setop_iterations", "Set-operation loop iterations", w.setop_iterations);
        doc.counter(
            "fm_setop_invocations",
            "Set-operation kernel invocations",
            w.setop_invocations,
        );
        doc.counter_vec(
            "fm_dispatches",
            "Adaptive dispatcher routing by kernel tier (partitions setop invocations)",
            &[
                (&[("tier", "merge")], w.merge_dispatches),
                (&[("tier", "gallop")], w.gallop_dispatches),
                (&[("tier", "probe")], w.probe_dispatches),
                (&[("tier", "simd")], w.simd_dispatches),
                (&[("tier", "reuse")], w.reuse_hits),
            ],
        );
        doc.counter(
            "fm_reuse_misses",
            "Consume-prefix dispatches the reuse tier declined",
            w.reuse_misses,
        );
        doc.counter(
            "fm_prefix_builds",
            "Reuse-prefix materializations (bitmap builds)",
            w.prefix_builds,
        );
        doc.gauge(
            "fm_reuse_bytes_hwm",
            "Peak reuse-arena bytes over any single start-vertex task",
            w.reuse_bytes_hwm as f64,
        );
        doc.counter("fm_cmap_queries", "Software c-map probes", w.cmap_queries);
        doc.counter("fm_cmap_hits", "Software c-map probe hits", w.cmap_hits);
        let hit_rate =
            if w.cmap_queries == 0 { 0.0 } else { w.cmap_hits as f64 / w.cmap_queries as f64 };
        doc.gauge("fm_cmap_hit_rate", "c-map hits / queries", hit_rate);
    }
    if let Some(shard) = outcome.telemetry() {
        depth_counter(
            &mut doc,
            "fm_depth_setop_iterations",
            "Set-operation iterations by DFS depth",
            &shard.depth_setop_iterations,
        );
        depth_counter(
            &mut doc,
            "fm_depth_setop_invocations",
            "Set-operation invocations by DFS depth",
            &shard.depth_setop_invocations,
        );
        depth_counter(
            &mut doc,
            "fm_depth_merge_dispatches",
            "Merge-tier dispatches by DFS depth",
            &shard.depth_merge,
        );
        depth_counter(
            &mut doc,
            "fm_depth_gallop_dispatches",
            "Gallop-tier dispatches by DFS depth",
            &shard.depth_gallop,
        );
        depth_counter(
            &mut doc,
            "fm_depth_probe_dispatches",
            "Probe-tier dispatches by DFS depth",
            &shard.depth_probe,
        );
        depth_counter(
            &mut doc,
            "fm_depth_simd_dispatches",
            "SIMD-tier dispatches by DFS depth",
            &shard.depth_simd,
        );
        depth_counter(
            &mut doc,
            "fm_depth_reuse_dispatches",
            "Reuse-tier dispatches (cached-prefix probes) by DFS depth",
            &shard.depth_reuse,
        );
        depth_counter(
            &mut doc,
            "fm_depth_prefix_builds",
            "Reuse-prefix materializations by DFS depth",
            &shard.depth_prefix_builds,
        );
        depth_counter(
            &mut doc,
            "fm_depth_cmap_queries",
            "Software c-map probes by DFS depth",
            &shard.depth_cmap_queries,
        );
        depth_counter(
            &mut doc,
            "fm_depth_cmap_hits",
            "Software c-map probe hits by DFS depth",
            &shard.depth_cmap_hits,
        );
        doc.log2_histogram(
            "fm_task_wall_time_us",
            "Start-vertex task wall time in microseconds",
            &[],
            &shard.task_micros,
        );
        doc.log2_histogram(
            "fm_frontier_size",
            "Materialized candidate-frontier lengths",
            &[],
            &shard.frontier_sizes,
        );
        doc.counter(
            "fm_dropped_spans",
            "Trace spans dropped to the per-worker ring capacity",
            shard.dropped_spans,
        );
    }
    doc
}

/// Builds the metrics document for an accelerator-backend run: counts,
/// cycle/traffic totals, and per-PE FSM-state occupancy
/// ([`FSM_STATE_NAMES`]).
pub fn sim_metrics(outcome: &MiningOutcome, cfg: &SimConfig) -> MetricsDoc {
    let report = outcome.sim_report().expect("sim_metrics needs an accelerator outcome");
    let mut doc = MetricsDoc::new();
    outcome_metrics(&mut doc, outcome);
    doc.counter("fm_sim_cycles", "Simulated execution time in PE cycles", report.cycles);
    doc.gauge(
        "fm_sim_seconds",
        "Simulated execution time at the configured clock",
        report.seconds(cfg),
    );
    doc.counter("fm_sim_tasks", "Scheduler tasks dispatched", report.totals.tasks);
    doc.counter("fm_sim_extensions", "Embedding extensions", report.totals.extensions);
    doc.counter("fm_sim_candidates", "Pruner candidates streamed", report.totals.candidates);
    doc.counter("fm_sim_siu_cycles", "SIU/SDU merge-loop iterations", report.totals.siu_cycles);
    doc.counter_vec(
        "fm_sim_cmap_ops",
        "Hardware c-map operations",
        &[
            (&[("op", "read")], report.totals.cmap_reads),
            (&[("op", "write")], report.totals.cmap_writes),
            (&[("op", "invalidate")], report.totals.cmap_invalidations),
            (&[("op", "overflow")], report.totals.cmap_overflows),
        ],
    );
    doc.gauge("fm_sim_cmap_read_ratio", "c-map reads / (reads + writes)", report.cmap_read_ratio());
    doc.counter("fm_sim_noc_requests", "PE requests onto the NoC", report.noc_traffic());
    doc.counter("fm_sim_l2_accesses", "Shared-cache accesses", report.l2_accesses);
    doc.counter("fm_sim_l2_misses", "Shared-cache misses", report.l2_misses);
    doc.gauge("fm_sim_l2_miss_rate", "Shared-cache miss rate", report.l2_miss_rate());
    doc.counter("fm_sim_dram_accesses", "DRAM accesses", report.dram_accesses);
    doc.counter(
        "fm_sim_dram_row_hits",
        "DRAM row-buffer hits",
        report.dram_accesses.min(report.dram_row_hits),
    );
    doc.gauge("fm_sim_load_imbalance", "Slowest PE finish over mean finish", report.imbalance());
    let pe_labels: Vec<String> = (0..report.pe_occupancy.len()).map(|p| p.to_string()).collect();
    let mut pairs: Vec<[(&str, &str); 2]> = Vec::new();
    let mut values: Vec<u64> = Vec::new();
    for (pe, occ) in pe_labels.iter().zip(&report.pe_occupancy) {
        for (state, &cycles) in FSM_STATE_NAMES.iter().zip(occ.iter()) {
            pairs.push([("pe", pe.as_str()), ("state", *state)]);
            values.push(cycles);
        }
    }
    let rows: Vec<(&[(&str, &str)], u64)> =
        pairs.iter().zip(&values).map(|(p, &v)| (p.as_slice(), v)).collect();
    doc.counter_vec(
        "fm_sim_pe_occupancy_cycles",
        "Busy cycles per PE partitioned by coarse FSM state",
        &rows,
    );
    let finish_pairs: Vec<[(&str, &str); 1]> =
        pe_labels.iter().map(|p| [("pe", p.as_str())]).collect();
    let finish_rows: Vec<(&[(&str, &str)], u64)> = finish_pairs
        .iter()
        .zip(&report.pe_finish_cycles)
        .map(|(p, &v)| (p.as_slice(), v))
        .collect();
    doc.counter_vec("fm_sim_pe_finish_cycles", "Per-PE completion time", &finish_rows);
    doc
}

/// Renders a software run's trace spans as Chrome `trace_event` JSON
/// (open in `chrome://tracing` or Perfetto). Runs without tracing enabled
/// render an empty-but-valid trace.
pub fn engine_trace(outcome: &MiningOutcome) -> String {
    let spans = outcome.telemetry().map(|s| s.spans.as_slice()).unwrap_or(&[]);
    chrome_trace_json("fm-engine", spans, &[])
}

/// Renders an accelerator run's machine timeline as Chrome `trace_event`
/// counter tracks. Timestamps are simulated *cycles* reported in the
/// trace's microsecond field (1 cycle = 1 µs on the viewer's axis) — the
/// paper's figures are all in cycles, and Perfetto's counter tracks only
/// need a monotone axis. Requires
/// [`SimConfig::timeline_every`] > 0 for a non-empty trace.
pub fn sim_trace(report: &SimReport) -> String {
    let pes = report.pe_finish_cycles.len().max(1) as f64;
    let mut counters: Vec<CounterEvent> = Vec::with_capacity(report.timeline.len());
    let mut prev = fm_sim::TimelineSample::default();
    for s in &report.timeline {
        // Instantaneous rates over the sampling window (the samples
        // themselves are cumulative).
        let d_access = s.l2_accesses - prev.l2_accesses;
        let d_miss = s.l2_misses - prev.l2_misses;
        let l2_hit_rate = if d_access == 0 { 1.0 } else { 1.0 - d_miss as f64 / d_access as f64 };
        let d_cycles = (s.cycle - prev.cycle).max(1);
        let utilization = (s.busy_cycles - prev.busy_cycles) as f64 / (d_cycles as f64 * pes);
        counters.push(CounterEvent {
            ts_us: s.cycle,
            name: "machine".to_string(),
            series: vec![
                ("pe_utilization".to_string(), utilization),
                ("l2_hit_rate".to_string(), l2_hit_rate),
                ("cmap_reads".to_string(), s.cmap_reads as f64),
                ("cmap_writes".to_string(), s.cmap_writes as f64),
                ("done_pes".to_string(), s.done_pes as f64),
            ],
        });
        prev = *s;
    }
    chrome_trace_json("fm-sim", &[], &counters)
}

/// Writes `doc` to `path`: Prometheus text exposition for `.prom`/`.txt`
/// extensions, compact JSON otherwise.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_metrics(path: &Path, doc: &MetricsDoc) -> std::io::Result<()> {
    let prometheus =
        matches!(path.extension().and_then(|e| e.to_str()), Some("prom") | Some("txt"));
    let body = if prometheus { doc.to_prometheus() } else { doc.to_json() };
    std::fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{Backend, Miner};
    use fm_engine::TelemetryOptions;
    use fm_graph::generators;
    use fm_pattern::Pattern;

    #[test]
    fn engine_metrics_expose_depth_series_and_tier_partition() {
        let g = generators::powerlaw_cluster(120, 4, 0.5, 5);
        let outcome = Miner::new(&g)
            .pattern(Pattern::k_clique(4))
            .telemetry(TelemetryOptions { metrics: true, ..Default::default() })
            .run()
            .unwrap();
        let doc = engine_metrics(&outcome);
        let prom = doc.to_prometheus();
        assert!(prom.contains("fm_pattern_count{pattern=\"4-clique\"}"), "{prom}");
        assert!(prom.contains("fm_depth_setop_iterations{depth=\"1\"}"), "{prom}");
        assert!(prom.contains("fm_dispatches{tier=\"merge\"}"), "{prom}");
        assert!(prom.contains("fm_dispatches{tier=\"simd\"}"), "{prom}");
        assert!(prom.contains("fm_dispatches{tier=\"reuse\"}"), "{prom}");
        assert!(prom.contains("fm_reuse_misses"), "{prom}");
        assert!(prom.contains("fm_prefix_builds"), "{prom}");
        assert!(prom.contains("fm_reuse_bytes_hwm"), "{prom}");
        assert!(prom.contains("fm_task_wall_time_us_count"), "{prom}");
        assert!(prom.contains("fm_checkpoint_write_failures 0"), "{prom}");
        assert!(prom.contains("fm_progress_dropped 0"), "{prom}");
        // The tier rows partition the invocation counter (satellite of the
        // dispatch-tier invariant).
        let w = outcome.work().unwrap();
        assert_eq!(
            w.merge_dispatches
                + w.gallop_dispatches
                + w.probe_dispatches
                + w.simd_dispatches
                + w.reuse_hits,
            w.setop_invocations
        );
        // JSON encoding parses under the same document.
        assert!(doc.to_json().starts_with('{'));
    }

    #[test]
    fn sim_metrics_expose_per_pe_occupancy() {
        let g = generators::powerlaw_cluster(120, 4, 0.5, 9);
        let cfg = fm_sim::SimConfig { num_pes: 3, timeline_every: 4096, ..Default::default() };
        let outcome = Miner::new(&g)
            .pattern(Pattern::cycle(4))
            .backend(Backend::Accelerator(cfg))
            .run()
            .unwrap();
        let doc = sim_metrics(&outcome, &cfg);
        let prom = doc.to_prometheus();
        assert!(
            prom.contains("fm_sim_pe_occupancy_cycles{pe=\"0\",state=\"IteratingEdges\"}"),
            "{prom}"
        );
        assert!(prom.contains("fm_sim_pe_occupancy_cycles{pe=\"2\",state=\"Idle\"}"), "{prom}");
        assert!(prom.contains("fm_sim_cycles"), "{prom}");
        let trace = sim_trace(outcome.sim_report().unwrap());
        assert!(trace.contains("pe_utilization"), "{trace}");
        assert!(trace.contains("\"ph\":\"C\""), "{trace}");
    }

    #[test]
    fn engine_trace_is_valid_even_without_telemetry() {
        let g = generators::complete(5);
        let outcome = Miner::new(&g).pattern(Pattern::triangle()).run().unwrap();
        let trace = engine_trace(&outcome);
        assert!(trace.contains("traceEvents"));
    }
}
