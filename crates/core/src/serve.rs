//! `flexminer serve` — a long-lived mining service over the
//! [`fm_jobs::Supervisor`].
//!
//! The protocol is hand-rolled JSONL (one request object per line, one
//! response object per line) spoken over stdio by default or a unix
//! domain socket with `--socket`. Operations:
//!
//! | op         | fields                                                      | response |
//! |------------|-------------------------------------------------------------|----------|
//! | `submit`   | `pattern`, `graph`, `name?`, `induced?`, `threads?`, `priority?`, `max_attempts?`, `budget?`, `deadline?` | `{"ok":true,"id":N}` or the admission rejection |
//! | `wait`     | `id`                                                        | the job's terminal outcome |
//! | `status`   |                                                             | supervisor gauges |
//! | `metrics`  | `format?` (`prometheus` or `json`)                          | `{"ok":true,"body":...}` |
//! | `cancel`   | `id`                                                        | `{"ok":bool}` |
//! | `shutdown` |                                                             | `{"ok":true}`, then the process drains |
//!
//! `budget` caps the job's set-op iterations and `deadline` gives it a
//! wall-clock allowance in (fractional) seconds; either stop surfaces as
//! an exact partial result with the `count` command's exit-code semantics
//! (4 budget exhausted, 3 deadline exceeded) on the `wait` response and
//! summary line. Both survive a drain in the resume manifest; the
//! deadline is re-anchored when the restarted process resubmits the job
//! (the allowance is per attempt — wall time the old process spent does
//! not count against the new one).
//!
//! On SIGTERM/SIGINT (or the `shutdown` op — both arm the same
//! [`fm_jobs::signal`] latch) the supervisor drains every unfinished job
//! to a checkpoint under `--spool` and records a resubmission manifest;
//! a restarted `serve` with the same spool resumes each job and its final
//! counts are bit-identical to an uninterrupted run. At exit the process
//! prints one `{"event":"job",...}` summary line per terminal job on
//! stdout, sorted by job name, so restart tooling can diff runs.

use crate::graphspec;
use fm_engine::{Checkpoint, EngineConfig, RunStatus};
use fm_graph::CsrGraph;
use fm_jobs::jsonl::{self, Json, ObjWriter};
use fm_jobs::{signal, JobHandle, JobOutcome, JobSpec, Supervisor, SupervisorConfig};
use fm_pattern::Pattern;
use fm_plan::{compile, CompileOptions, ExecutionPlan};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How `flexminer serve` runs: transport, durability spool, and the
/// supervisor's admission limits.
#[derive(Clone, Debug, Default)]
pub struct ServeConfig {
    /// Unix-socket path to listen on; `None` speaks JSONL over stdio.
    pub socket: Option<PathBuf>,
    /// Directory for drain checkpoints and the resume manifest.
    pub spool: Option<PathBuf>,
    /// Exit once at least one job was submitted and all jobs resolved.
    pub exit_when_idle: bool,
    /// Worker-pool and admission-control limits.
    pub supervisor: SupervisorConfig,
}

/// Exit code for a run status, shared by `count` and per-job serve
/// outcomes: 0 complete, 3 deadline exceeded, 4 budget exhausted,
/// 5 cancelled, 6 degraded.
pub fn status_exit_code(status: RunStatus) -> i32 {
    match status {
        RunStatus::Complete => 0,
        RunStatus::DeadlineExceeded => 3,
        RunStatus::BudgetExhausted => 4,
        RunStatus::Cancelled => 5,
        RunStatus::Degraded => 6,
    }
}

/// Per-job exit code extending [`status_exit_code`] with the supervisor's
/// two extra terminal states: 8 rejected by admission control, 9 drained
/// to a checkpoint by shutdown.
pub fn job_exit_code(outcome: &JobOutcome) -> i32 {
    match outcome {
        JobOutcome::Finished(r) => status_exit_code(r.status),
        JobOutcome::Rejected { .. } => 8,
        JobOutcome::Drained { .. } => 9,
    }
}

/// Everything needed to report a job and to resubmit it after a drain.
struct JobMeta {
    name: String,
    graph: String,
    pattern: String,
    induced: bool,
    threads: usize,
    priority: i32,
    max_attempts: Option<u32>,
    /// Set-op iteration cap, if the submit carried one.
    budget: Option<u64>,
    /// Wall-clock allowance in seconds. The absolute deadline is anchored
    /// at submit time, so this original span is what a resume replays.
    deadline_secs: Option<f64>,
    plan: Arc<ExecutionPlan>,
}

struct Tracked {
    handle: JobHandle,
    meta: JobMeta,
}

struct ServeState {
    cfg: ServeConfig,
    sup: Supervisor,
    jobs: Mutex<Vec<Tracked>>,
    graphs: Mutex<HashMap<String, Arc<CsrGraph>>>,
    submitted_any: AtomicBool,
}

impl ServeState {
    fn new(cfg: ServeConfig) -> ServeState {
        let sup = Supervisor::new(cfg.supervisor.clone());
        ServeState {
            cfg,
            sup,
            jobs: Mutex::new(Vec::new()),
            graphs: Mutex::new(HashMap::new()),
            submitted_any: AtomicBool::new(false),
        }
    }

    fn jobs_all_resolved(&self) -> bool {
        self.jobs
            .lock()
            .expect("serve job table poisoned")
            .iter()
            .all(|t| t.handle.try_outcome().is_some())
    }

    fn graph_for(&self, spec: &str) -> Result<Arc<CsrGraph>, String> {
        if let Some(g) = self.graphs.lock().expect("serve graph cache poisoned").get(spec) {
            return Ok(Arc::clone(g));
        }
        // Load outside the lock — file parses and generators can be slow.
        let g = Arc::new(graphspec::load(spec)?);
        let mut cache = self.graphs.lock().expect("serve graph cache poisoned");
        Ok(Arc::clone(cache.entry(spec.to_string()).or_insert(g)))
    }

    /// Parses and submits one job; `resume` carries a drain checkpoint on
    /// restart. Returns the response line.
    fn submit(&self, req: &Json, resume: Option<Checkpoint>) -> String {
        match self.try_submit(req, resume) {
            Ok(line) => line,
            Err(e) => err_line(&e),
        }
    }

    fn try_submit(&self, req: &Json, resume: Option<Checkpoint>) -> Result<String, String> {
        let pattern_spec =
            req.get("pattern").and_then(Json::as_str).ok_or("submit needs a pattern")?;
        let graph_spec = req.get("graph").and_then(Json::as_str).ok_or("submit needs a graph")?;
        let induced = req.get("induced").and_then(Json::as_bool).unwrap_or(false);
        let threads =
            req.get("threads").and_then(Json::as_u64).unwrap_or(1).clamp(1, 1 << 16) as usize;
        let priority = req.get("priority").and_then(Json::as_i64).unwrap_or(0) as i32;
        let max_attempts = req.get("max_attempts").and_then(Json::as_u64).map(|v| v as u32);
        let budget = req.get("budget").and_then(Json::as_u64);
        let deadline_secs = req.get("deadline").and_then(Json::as_f64);
        if let Some(s) = deadline_secs {
            if !s.is_finite() || s <= 0.0 {
                return Err(format!("deadline must be a positive number of seconds, got {s}"));
            }
        }
        let pattern: Pattern =
            pattern_spec.parse().map_err(|e| format!("bad pattern {pattern_spec:?}: {e}"))?;
        let plan = Arc::new(compile(&pattern, CompileOptions { induced, ..Default::default() }));
        let graph = self.graph_for(graph_spec)?;
        let name = req
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("{pattern_spec}@{graph_spec}"));
        let meta = JobMeta {
            name: name.clone(),
            graph: graph_spec.to_string(),
            pattern: pattern_spec.to_string(),
            induced,
            threads,
            priority,
            max_attempts,
            budget,
            deadline_secs,
            plan: Arc::clone(&plan),
        };
        let mut engine_cfg = EngineConfig::with_threads(threads);
        engine_cfg.budget.max_setop_iterations = budget;
        // The deadline anchors here, at admission — like `count`'s
        // `--timeout` anchoring after graph load — so queue wait counts
        // against it but a drained job resubmitted from the manifest gets
        // its full allowance back.
        engine_cfg.budget.deadline =
            deadline_secs.and_then(|s| Instant::now().checked_add(Duration::from_secs_f64(s)));
        let spec = JobSpec {
            priority,
            graph_key: graphspec::fingerprint(graph_spec),
            max_attempts,
            resume,
            ..JobSpec::new(name, graph, plan, engine_cfg)
        };
        let handle = self.sup.submit(spec);
        self.submitted_any.store(true, Ordering::SeqCst);
        let id = handle.id();
        // Admission rejections resolve synchronously inside `submit`;
        // surface them on the response instead of making callers wait.
        let line = match handle.try_outcome() {
            Some(JobOutcome::Rejected { reason }) => ObjWriter::new()
                .bool("ok", false)
                .u64("id", id)
                .str("outcome", "rejected")
                .i64("exit_code", 8)
                .str("error", &reason)
                .finish(),
            _ => {
                ObjWriter::new().bool("ok", true).u64("id", id).str("name", handle.name()).finish()
            }
        };
        self.jobs.lock().expect("serve job table poisoned").push(Tracked { handle, meta });
        Ok(line)
    }

    /// One request line in, one response line out.
    fn handle_line(&self, line: &str) -> String {
        let req = match jsonl::parse(line) {
            Ok(v) => v,
            Err(e) => return err_line(&format!("bad request: {e}")),
        };
        let Some(op) = req.get("op").and_then(Json::as_str) else {
            return err_line("missing op");
        };
        match op {
            "submit" => self.submit(&req, None),
            "wait" => self.wait(&req),
            "status" => self.status(),
            "metrics" => self.metrics(&req),
            "cancel" => match req.get("id").and_then(Json::as_u64) {
                Some(id) => ObjWriter::new().bool("ok", self.sup.cancel(id)).finish(),
                None => err_line("cancel needs an id"),
            },
            "shutdown" => {
                signal::request_termination();
                ObjWriter::new().bool("ok", true).finish()
            }
            other => err_line(&format!("unknown op {other}")),
        }
    }

    /// Blocks until the job's terminal outcome, polling so a termination
    /// signal can still drain the process out from under the waiter.
    fn wait(&self, req: &Json) -> String {
        let Some(id) = req.get("id").and_then(Json::as_u64) else {
            return err_line("wait needs an id");
        };
        loop {
            let resolved = {
                let jobs = self.jobs.lock().expect("serve job table poisoned");
                let Some(t) = jobs.iter().find(|t| t.handle.id() == id) else {
                    return err_line("unknown job id");
                };
                t.handle.try_outcome().map(|o| outcome_line(id, &t.meta, &o))
            };
            if let Some(line) = resolved {
                return line;
            }
            if signal::termination_requested() {
                return err_line("terminating");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    fn status(&self) -> String {
        let s = self.sup.stats();
        ObjWriter::new()
            .bool("ok", true)
            .u64("submitted", s.submitted)
            .u64("rejected", s.rejected)
            .u64("preempted", s.preempted)
            .u64("retries", s.retries)
            .u64("completed", s.completed)
            .u64("drained", s.drained)
            .u64("queued", s.queued)
            .u64("running", s.running)
            .u64("memory_bytes", s.memory_bytes)
            .u64("memory_budget_bytes", s.memory_budget_bytes)
            .finish()
    }

    fn metrics(&self, req: &Json) -> String {
        let doc = self.sup.metrics();
        match req.get("format").and_then(Json::as_str).unwrap_or("json") {
            "prometheus" => ObjWriter::new().bool("ok", true).str("body", &doc.to_prometheus()),
            _ => ObjWriter::new().bool("ok", true).raw("body", &doc.to_json()),
        }
        .finish()
    }

    /// Resubmits every job recorded by a previous process's drain. The
    /// manifest is consumed (deleted) first so a crash mid-resume cannot
    /// double-submit on the next restart.
    fn resume_manifest(&self) {
        let Some(spool) = self.cfg.spool.as_ref() else { return };
        let manifest = spool.join("manifest.jsonl");
        let Ok(body) = std::fs::read_to_string(&manifest) else { return };
        let _ = std::fs::remove_file(&manifest);
        for line in body.lines().filter(|l| !l.trim().is_empty()) {
            match resume_entry(line) {
                Ok((req, ckpt)) => {
                    let resp = self.submit(&req, Some(ckpt));
                    eprintln!("resumed from manifest: {resp}");
                }
                Err(e) => eprintln!("manifest entry skipped: {e}"),
            }
        }
    }

    /// Drains the supervisor, writes the resume manifest, and prints the
    /// per-job summary lines. Returns the process exit code.
    fn finish(&self) -> i32 {
        let drained = self.sup.shutdown(self.cfg.spool.as_deref());
        let jobs = self.jobs.lock().expect("serve job table poisoned");
        if !drained.is_empty() {
            let mut manifest = String::new();
            for d in &drained {
                if let Some(e) = &d.error {
                    eprintln!("drain: job {} ({}) lost its checkpoint: {e}", d.id, d.name);
                }
                let Some(ckpt) = &d.checkpoint else { continue };
                let Some(t) = jobs.iter().find(|t| t.handle.id() == d.id) else { continue };
                let mut w = ObjWriter::new()
                    .str("name", &t.meta.name)
                    .str("graph", &t.meta.graph)
                    .str("pattern", &t.meta.pattern)
                    .bool("induced", t.meta.induced)
                    .u64("threads", t.meta.threads as u64)
                    .i64("priority", t.meta.priority as i64)
                    .str("checkpoint", &ckpt.display().to_string());
                if let Some(a) = t.meta.max_attempts {
                    w = w.u64("max_attempts", a as u64);
                }
                if let Some(b) = t.meta.budget {
                    w = w.u64("budget", b);
                }
                if let Some(s) = t.meta.deadline_secs {
                    w = w.raw("deadline", &format!("{s}"));
                }
                manifest.push_str(&w.finish());
                manifest.push('\n');
                eprintln!("drained: job {} ({}) -> {}", d.id, d.name, ckpt.display());
            }
            if let Some(spool) = self.cfg.spool.as_ref() {
                let path = spool.join("manifest.jsonl");
                if let Err(e) = std::fs::write(&path, manifest) {
                    eprintln!("drain: manifest write failed: {e}");
                }
            }
        }
        // One summary line per terminal job, sorted by name — ids change
        // across a restart, names don't, so restart tooling diffs these.
        let mut lines: Vec<(String, String)> = jobs
            .iter()
            .filter_map(|t| {
                let outcome = t.handle.try_outcome()?;
                if matches!(outcome, JobOutcome::Drained { .. }) {
                    return None; // resumes elsewhere; reported there
                }
                Some((t.meta.name.clone(), event_line(&t.meta, &outcome)))
            })
            .collect();
        lines.sort();
        let mut out = std::io::stdout().lock();
        for (_, line) in &lines {
            let _ = writeln!(out, "{line}");
        }
        let _ = out.flush();
        0
    }
}

fn err_line(msg: &str) -> String {
    ObjWriter::new().bool("ok", false).str("error", msg).finish()
}

/// Fields shared by `wait` responses and exit summary lines.
fn outcome_fields(w: ObjWriter, meta: &JobMeta, outcome: &JobOutcome) -> ObjWriter {
    let w = w.i64("exit_code", job_exit_code(outcome) as i64);
    match outcome {
        JobOutcome::Finished(r) => {
            let counts = r.try_unique_counts(&meta.plan).unwrap_or_else(|| r.counts.clone());
            w.str("outcome", "finished")
                .str("status", r.status.as_str())
                .raw("counts", &jsonl::u64_array(&counts))
                .u64("faults", r.faults.len() as u64)
                .u64("quarantined", r.quarantined.len() as u64)
        }
        JobOutcome::Rejected { reason } => w.str("outcome", "rejected").str("error", reason),
        JobOutcome::Drained { checkpoint } => {
            let w = w.str("outcome", "drained");
            match checkpoint {
                Some(p) => w.str("checkpoint", &p.display().to_string()),
                None => w,
            }
        }
    }
}

fn outcome_line(id: u64, meta: &JobMeta, outcome: &JobOutcome) -> String {
    let ok = !matches!(outcome, JobOutcome::Rejected { .. });
    let w = ObjWriter::new().bool("ok", ok).u64("id", id).str("name", &meta.name);
    outcome_fields(w, meta, outcome).finish()
}

fn event_line(meta: &JobMeta, outcome: &JobOutcome) -> String {
    let w = ObjWriter::new()
        .str("event", "job")
        .str("name", &meta.name)
        .str("pattern", &meta.pattern)
        .str("graph", &meta.graph);
    outcome_fields(w, meta, outcome).finish()
}

/// Parses one manifest line back into a submit request plus its loaded
/// checkpoint.
fn resume_entry(line: &str) -> Result<(Json, Checkpoint), String> {
    let req = jsonl::parse(line)?;
    let path =
        req.get("checkpoint").and_then(Json::as_str).ok_or("manifest entry missing checkpoint")?;
    let ckpt =
        Checkpoint::load(std::path::Path::new(path)).map_err(|e| format!("load {path}: {e}"))?;
    Ok((req, ckpt))
}

/// Runs the serve loop to completion; returns the process exit code.
///
/// # Errors
///
/// Fails on transport setup problems (socket bind, spool creation); once
/// the loop is up, per-request problems become error responses instead.
pub fn run(cfg: ServeConfig) -> Result<i32, String> {
    signal::install_termination_latch();
    if let Some(spool) = cfg.spool.as_ref() {
        std::fs::create_dir_all(spool)
            .map_err(|e| format!("create spool {}: {e}", spool.display()))?;
    }
    let state = Arc::new(ServeState::new(cfg));
    state.resume_manifest();
    match state.cfg.socket.clone() {
        Some(path) => run_socket(&state, &path),
        None => run_stdio(&state),
    }
}

/// True once the loop should stop: a termination signal arrived, or
/// idle-exit is armed and every submitted job has resolved.
fn should_exit(state: &ServeState, eof: bool) -> bool {
    if signal::termination_requested() {
        return true;
    }
    let idle_armed =
        eof || (state.cfg.exit_when_idle && state.submitted_any.load(Ordering::SeqCst));
    idle_armed && state.jobs_all_resolved()
}

fn ready_line(transport: &str) {
    println!("{}", ObjWriter::new().str("event", "ready").str("transport", transport).finish());
    let _ = std::io::stdout().flush();
}

fn run_stdio(state: &Arc<ServeState>) -> Result<i32, String> {
    // A dedicated reader thread feeds a channel: SIGTERM must be able to
    // drain the process while the main loop would otherwise sit in a
    // blocking `read_line` (the latch's `signal(2)` handler implies
    // SA_RESTART, so blocking reads never EINTR out).
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::Builder::new()
        .name("fm-serve-stdin".into())
        .spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
            // Channel disconnect signals EOF to the main loop.
        })
        .map_err(|e| format!("spawn stdin reader: {e}"))?;
    ready_line("stdio");
    let mut eof = false;
    loop {
        if should_exit(state, eof) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                println!("{}", state.handle_line(&line));
                let _ = std::io::stdout().flush();
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => eof = true,
        }
    }
    Ok(state.finish())
}

#[cfg(unix)]
fn run_socket(state: &Arc<ServeState>, path: &std::path::Path) -> Result<i32, String> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    listener.set_nonblocking(true).map_err(|e| format!("nonblocking {}: {e}", path.display()))?;
    ready_line("socket");
    loop {
        if should_exit(state, false) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let st = Arc::clone(state);
                // Connection threads are detached; they die with the
                // process after the drain below.
                let _ = std::thread::Builder::new().name("fm-serve-conn".into()).spawn(move || {
                    let mut reader =
                        std::io::BufReader::new(stream.try_clone().expect("serve socket clone"));
                    let mut stream = stream;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        if line.trim().is_empty() {
                            continue;
                        }
                        let resp = st.handle_line(&line);
                        if writeln!(stream, "{resp}").is_err() {
                            break;
                        }
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("accept: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    let code = state.finish();
    let _ = std::fs::remove_file(path);
    Ok(code)
}

#[cfg(not(unix))]
fn run_socket(_state: &Arc<ServeState>, _path: &std::path::Path) -> Result<i32, String> {
    Err("--socket requires a unix platform; use stdio mode".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(cfg: ServeConfig) -> ServeState {
        ServeState::new(cfg)
    }

    #[test]
    fn submit_wait_status_roundtrip_over_protocol() {
        let st = state(ServeConfig::default());
        let resp = st.handle_line(
            r#"{"op":"submit","name":"tri","pattern":"triangle","graph":"gen:complete,n=6"}"#,
        );
        let v = jsonl::parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        let id = v.get("id").and_then(Json::as_u64).unwrap();
        let done = st.handle_line(&format!(r#"{{"op":"wait","id":{id}}}"#));
        let d = jsonl::parse(&done).unwrap();
        assert_eq!(d.get("outcome").and_then(Json::as_str), Some("finished"), "{done}");
        assert_eq!(d.get("exit_code").and_then(Json::as_i64), Some(0), "{done}");
        // complete(6) holds C(6,3) = 20 triangles.
        let counts = d.get("counts").and_then(Json::as_arr).unwrap();
        assert_eq!(counts[0].as_u64(), Some(20), "{done}");
        let status = st.handle_line(r#"{"op":"status"}"#);
        let s = jsonl::parse(&status).unwrap();
        assert_eq!(s.get("submitted").and_then(Json::as_u64), Some(1), "{status}");
        let metrics = st.handle_line(r#"{"op":"metrics","format":"prometheus"}"#);
        assert!(metrics.contains("fm_jobs_submitted_total"), "{metrics}");
        st.sup.shutdown(None);
    }

    #[test]
    fn protocol_errors_are_responses_not_crashes() {
        let st = state(ServeConfig::default());
        for (req, needle) in [
            ("not json", "bad request"),
            (r#"{"no":"op"}"#, "missing op"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"submit","pattern":"triangle"}"#, "submit needs a graph"),
            (r#"{"op":"submit","graph":"gen:complete,n=4"}"#, "submit needs a pattern"),
            (
                r#"{"op":"submit","pattern":"zzz-not-a-pattern","graph":"gen:complete,n=4"}"#,
                "bad pattern",
            ),
            (r#"{"op":"wait","id":99}"#, "unknown job id"),
            (r#"{"op":"cancel"}"#, "cancel needs an id"),
        ] {
            let resp = st.handle_line(req);
            let v = jsonl::parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{req} -> {resp}");
            assert!(resp.contains(needle), "{req} -> {resp}");
        }
        st.sup.shutdown(None);
    }

    #[test]
    fn saturated_submit_reports_rejection_with_exit_code_8() {
        let st = state(ServeConfig {
            supervisor: SupervisorConfig { memory_budget_bytes: 1, ..Default::default() },
            ..Default::default()
        });
        let resp =
            st.handle_line(r#"{"op":"submit","pattern":"triangle","graph":"gen:complete,n=16"}"#);
        let v = jsonl::parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{resp}");
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("rejected"), "{resp}");
        assert_eq!(v.get("exit_code").and_then(Json::as_i64), Some(8), "{resp}");
        assert!(resp.contains("memory budget"), "{resp}");
        st.sup.shutdown(None);
    }

    #[test]
    fn submit_budget_and_deadline_reach_the_job_and_the_manifest_shape() {
        let st = state(ServeConfig::default());
        // A one-iteration budget on a non-trivial graph must stop early
        // with the `count` command's exit code 4 and an exact partial.
        let resp = st.handle_line(
            r#"{"op":"submit","name":"capped","pattern":"4-cycle","graph":"gen:powerlaw,n=400,m=4,closure=0.5,seed=5","budget":1,"deadline":3600}"#,
        );
        let v = jsonl::parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        let id = v.get("id").and_then(Json::as_u64).unwrap();
        {
            let jobs = st.jobs.lock().unwrap();
            assert_eq!(jobs[0].meta.budget, Some(1));
            assert_eq!(jobs[0].meta.deadline_secs, Some(3600.0));
        }
        let done = st.handle_line(&format!(r#"{{"op":"wait","id":{id}}}"#));
        let d = jsonl::parse(&done).unwrap();
        assert_eq!(d.get("status").and_then(Json::as_str), Some("BudgetExhausted"), "{done}");
        assert_eq!(d.get("exit_code").and_then(Json::as_i64), Some(4), "{done}");

        // The manifest line a drain would write for this job round-trips
        // through the submit parser with both knobs intact — this is the
        // resume path (`resume_manifest` replays these lines verbatim).
        let manifest_line = ObjWriter::new()
            .str("op", "submit")
            .str("name", "capped")
            .str("pattern", "4-cycle")
            .str("graph", "gen:complete,n=6")
            .u64("budget", 1)
            .raw("deadline", &format!("{}", 3600.0))
            .finish();
        st.handle_line(&manifest_line);
        let jobs = st.jobs.lock().unwrap();
        assert_eq!(jobs[1].meta.budget, Some(1));
        assert_eq!(jobs[1].meta.deadline_secs, Some(3600.0));
        drop(jobs);
        st.sup.shutdown(None);
    }

    #[test]
    fn non_positive_deadlines_are_rejected_at_submit() {
        let st = state(ServeConfig::default());
        for bad in ["0", "-2.5"] {
            let resp = st.handle_line(&format!(
                r#"{{"op":"submit","pattern":"triangle","graph":"gen:complete,n=4","deadline":{bad}}}"#,
            ));
            let v = jsonl::parse(&resp).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{resp}");
            assert!(resp.contains("deadline must be a positive number"), "{resp}");
        }
        st.sup.shutdown(None);
    }

    #[test]
    fn job_exit_codes_cover_the_extended_table() {
        use fm_engine::MiningResult;
        let finished = JobOutcome::Finished(MiningResult {
            status: RunStatus::Degraded,
            ..Default::default()
        });
        assert_eq!(job_exit_code(&finished), 6);
        assert_eq!(job_exit_code(&JobOutcome::Rejected { reason: "full".into() }), 8);
        assert_eq!(job_exit_code(&JobOutcome::Drained { checkpoint: None }), 9);
        assert_eq!(status_exit_code(RunStatus::Complete), 0);
        assert_eq!(status_exit_code(RunStatus::DeadlineExceeded), 3);
        assert_eq!(status_exit_code(RunStatus::BudgetExhausted), 4);
        assert_eq!(status_exit_code(RunStatus::Cancelled), 5);
    }

    #[test]
    fn drain_writes_manifest_and_restart_resumes_bit_identically() {
        let spool = std::env::temp_dir().join(format!("fm-serve-drain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&spool);
        std::fs::create_dir_all(&spool).unwrap();
        let mk = || {
            state(ServeConfig {
                spool: Some(spool.clone()),
                supervisor: SupervisorConfig { workers: 1, stint_tasks: 4, ..Default::default() },
                ..Default::default()
            })
        };
        // Reference: the same job, run clean to completion.
        let clean = mk();
        let resp = clean.handle_line(
            r#"{"op":"submit","name":"ref","pattern":"4-cycle","graph":"gen:powerlaw,n=2500,m=4,closure=0.5,seed=7"}"#,
        );
        let id = jsonl::parse(&resp).unwrap().get("id").and_then(Json::as_u64).unwrap();
        let reference = clean.handle_line(&format!(r#"{{"op":"wait","id":{id}}}"#));
        clean.sup.shutdown(None);
        let ref_counts = jsonl::parse(&reference)
            .unwrap()
            .get("counts")
            .and_then(|c| c.as_arr().map(|a| a.to_vec()))
            .unwrap();

        // Interrupted: submit, drain almost immediately, then restart.
        let first = mk();
        first.handle_line(
            r#"{"op":"submit","name":"ref","pattern":"4-cycle","graph":"gen:powerlaw,n=2500,m=4,closure=0.5,seed=7"}"#,
        );
        let code = first.finish();
        assert_eq!(code, 0);
        // Whether the job finished before the drain is timing-dependent;
        // the manifest exists exactly when it did not.
        let manifest = spool.join("manifest.jsonl");
        if manifest.exists() {
            let second = mk();
            second.resume_manifest();
            assert!(!manifest.exists(), "resume must consume the manifest");
            let jobs = second.jobs.lock().unwrap();
            assert_eq!(jobs.len(), 1);
            let outcome = jobs[0].handle.wait();
            let JobOutcome::Finished(r) = outcome else {
                panic!("resumed job must finish, got {outcome:?}")
            };
            assert_eq!(r.status, RunStatus::Complete);
            let resumed = r.try_unique_counts(&jobs[0].meta.plan).unwrap();
            let want: Vec<u64> = ref_counts.iter().map(|c| c.as_u64().unwrap()).collect();
            assert_eq!(resumed, want, "drain + resume must be bit-identical");
            drop(jobs);
            second.sup.shutdown(None);
        }
        let _ = std::fs::remove_dir_all(&spool);
    }
}
