//! # flexminer
//!
//! The public facade of the FlexMiner (ISCA 2021) reproduction: one
//! builder-style API over the whole software/hardware co-designed system.
//!
//! FlexMiner's promise is that the user "only needs to specify the
//! pattern(s) of interest, same as state-of-the-art software GPM
//! frameworks" (§I). Accordingly, a mining job here is: a data graph, one
//! or more patterns, an induced/edge-induced mode, and a backend — either
//! the multithreaded software engine (the GraphZero-model CPU baseline) or
//! the cycle-level accelerator simulator. Everything else (pattern
//! analysis, matching/symmetry orders, execution-plan compilation, c-map
//! hints, k-clique orientation) happens automatically.
//!
//! ```text
//! pattern(s) ──► fm-pattern analysis ──► fm-plan compiler ──► ExecutionPlan
//!                                                               │
//!                     ┌─────────────────────────────────────────┤
//!                     ▼                                         ▼
//!        fm-engine (software CPU baseline)        fm-sim (FlexMiner accelerator)
//! ```
//!
//! # Examples
//!
//! Count triangles with the software engine and on the simulated
//! accelerator, and check they agree:
//!
//! ```
//! use flexminer::{Backend, Miner, Pattern};
//! use fm_graph::generators;
//!
//! let g = generators::powerlaw_cluster(200, 4, 0.5, 1);
//! let sw = Miner::new(&g).pattern(Pattern::triangle()).run()?;
//! let hw = Miner::new(&g)
//!     .pattern(Pattern::triangle())
//!     .backend(Backend::accelerator())
//!     .run()?;
//! assert_eq!(sw.counts(), hw.counts());
//! let report = hw.sim_report().expect("accelerator runs produce a report");
//! assert!(report.cycles > 0);
//! # Ok::<(), flexminer::MineError>(())
//! ```
//!
//! Convenience entry points for the paper's four applications (TC, k-CL,
//! SL, k-MC) live in [`apps`].

pub mod apps;
pub mod graphspec;
pub mod miner;
pub mod report;
pub mod serve;

// Whole-subsystem re-exports, so downstream users need only the
// `flexminer` dependency: `flexminer::graph::generators`, etc.
pub use fm_engine as engine;
pub use fm_graph as graph;
pub use fm_jobs as jobs;
pub use fm_pattern as pattern;
pub use fm_plan as plan;
pub use fm_sim as sim;
pub use fm_telemetry as telemetry;

pub use fm_engine::{
    Budget, CancelToken, Checkpoint, CheckpointConfig, CheckpointError, EngineConfig, Fault,
    GraphFingerprint, ProgressOptions, RunStatus, Straggler, TelemetryOptions,
};
pub use fm_graph::{CsrGraph, GraphBuilder, GraphError, VertexId};
pub use fm_pattern::{motifs, Pattern, PatternError};
pub use fm_plan::{CompileOptions, ExecutionPlan};
pub use fm_sim::{PeFsmState, SimConfig, SimReport, TimelineSample, WatchdogDump, FSM_STATE_NAMES};
pub use miner::{Backend, MineError, Miner, MiningOutcome, PatternCount};
