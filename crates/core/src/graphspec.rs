//! Graph input specs shared by the CLI and `flexminer serve`.
//!
//! An input is either a path to an edge-list file (`u v` per line,
//! SNAP-style) or an inline generator spec such as
//! `gen:powerlaw,n=10000,m=6,closure=0.5,seed=42`,
//! `gen:er,n=1000,p=0.05,seed=1`, or `gen:complete,n=32`. The spec
//! string doubles as the identity key for the supervisor's resident-graph
//! accounting: two jobs naming the same spec share one loaded copy and
//! are charged for it once.

use fm_graph::{generators, io, CsrGraph};
use std::collections::HashMap;

/// Loads a graph input: a `gen:` spec builds a synthetic graph, anything
/// else opens an edge-list file.
///
/// # Errors
///
/// Returns a human-readable message for unknown generator kinds, bad
/// parameters, and file open/parse failures.
pub fn load(input: &str) -> Result<CsrGraph, String> {
    if let Some(spec) = input.strip_prefix("gen:") {
        return generate(spec);
    }
    let file = std::fs::File::open(input).map_err(|e| format!("open {input}: {e}"))?;
    io::read_edge_list(file).map_err(|e| format!("parse {input}: {e}"))
}

/// Builds a synthetic graph from a `kind,k=v,...` spec (no `gen:` prefix).
///
/// Kinds: `powerlaw` (n, m, closure, seed), `pa` (n, m, seed),
/// `er` (n, p, seed), `complete` (n), `caveman` (communities, size,
/// bridges, seed).
///
/// # Errors
///
/// Returns a message for unknown kinds or unparsable parameters.
pub fn generate(spec: &str) -> Result<CsrGraph, String> {
    let mut parts = spec.split(',');
    let kind = parts.next().ok_or("empty generator spec")?;
    let kv: HashMap<&str, &str> = parts.filter_map(|p| p.split_once('=')).collect();
    let get_u = |k: &str, default: usize| -> Result<usize, String> {
        kv.get(k).map_or(Ok(default), |v| v.parse().map_err(|e| format!("bad {k}: {e}")))
    };
    let get_f = |k: &str, default: f64| -> Result<f64, String> {
        kv.get(k).map_or(Ok(default), |v| v.parse().map_err(|e| format!("bad {k}: {e}")))
    };
    let seed = get_u("seed", 1)? as u64;
    Ok(match kind {
        "powerlaw" => generators::powerlaw_cluster(
            get_u("n", 10_000)?,
            get_u("m", 5)?,
            get_f("closure", 0.5)?,
            seed,
        ),
        "pa" => generators::preferential_attachment(get_u("n", 10_000)?, get_u("m", 5)?, seed),
        "er" => generators::erdos_renyi(get_u("n", 1_000)?, get_f("p", 0.01)?, seed),
        "complete" => generators::complete(get_u("n", 16)?),
        "caveman" => generators::caveman(
            get_u("communities", 50)?,
            get_u("size", 10)?,
            get_u("bridges", 100)?,
            seed,
        ),
        other => return Err(format!("unknown generator kind {other}")),
    })
}

/// Stable non-zero identity key for a spec string, used as the
/// supervisor's shared-graph key so jobs naming the same input are
/// charged for one resident copy (FNV-1a; 0 is reserved for "unique").
pub fn fingerprint(input: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in input.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_specs_build_and_paths_error_cleanly() {
        assert_eq!(load("gen:complete,n=5").unwrap().num_vertices(), 5);
        assert!(generate("er,n=50,p=0.1,seed=3").is_ok());
        assert!(generate("warp,n=5").unwrap_err().contains("unknown generator kind"));
        assert!(load("/nonexistent/definitely-missing").unwrap_err().contains("open"));
    }

    #[test]
    fn fingerprint_is_stable_nonzero_and_spec_sensitive() {
        let a = fingerprint("gen:complete,n=5");
        assert_eq!(a, fingerprint("gen:complete,n=5"));
        assert_ne!(a, fingerprint("gen:complete,n=6"));
        assert_ne!(a, 0);
    }
}
