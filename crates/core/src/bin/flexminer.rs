//! `flexminer` — command-line interface to the FlexMiner reproduction.
//!
//! ```text
//! flexminer plan  <pattern>
//! flexminer count <pattern> --graph <input> [--induced] [--threads N]
//! flexminer sim   <pattern> --graph <input> [--pes N] [--cmap BYTES] [--energy]
//! flexminer motifs <k>      --graph <input> [--threads N]
//! flexminer generate <spec> --out <file>
//! flexminer stats           --graph <input>
//! ```
//!
//! `<pattern>` is a name (`triangle`, `4-cycle`, `5-clique`, `diamond`, …)
//! or an edge list (`0-1,1-2,2-0`). `<input>` is an edge-list file
//! (`u v` per line, SNAP-style) or an inline generator spec such as
//! `gen:powerlaw,n=10000,m=6,closure=0.5,seed=42`,
//! `gen:er,n=1000,p=0.05,seed=1`, or `gen:complete,n=32`.

use flexminer::jobs::SupervisorConfig;
use flexminer::serve::{self, ServeConfig};
use flexminer::telemetry::{parse_cadence, LogLevel, TraceClock};
use flexminer::{
    apps, graphspec, report, Backend, Budget, EngineConfig, MineError, Miner, Pattern,
    ProgressOptions, RunStatus, SimConfig, TelemetryOptions,
};
use fm_graph::{generators, io, CsrGraph, GraphStats};
use fm_sim::EnergyModel;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage("");
    }
    let result = match args[0].as_str() {
        "plan" => cmd_plan(&args[1..]),
        "count" => cmd_count(&args[1..], false),
        "sim" => cmd_sim(&args[1..]),
        "motifs" => cmd_motifs(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command {other}")),
    };
    match result {
        Ok(code) => exit(code),
        Err(msg) => {
            eprintln!("error: {msg}");
            exit(1);
        }
    }
}

/// Exit code for a run's final status, so scripts can tell a truncated
/// count from a total one: 0 complete, 3 deadline exceeded, 4 budget
/// exhausted, 5 cancelled, 6 degraded (isolated task faults). Codes 1–2
/// stay reserved for errors and usage; 7 is the simulator watchdog, and
/// serve jobs extend the table with 8 (rejected) and 9 (drained).
fn exit_code(status: RunStatus) -> i32 {
    serve::status_exit_code(status)
}

/// Reports a partial run on stderr: results on stdout stay machine
/// readable, the status and fault/quarantine/straggler rosters go to the
/// human. `level` is the CLI verbosity (`--log-level`): warnings about
/// truncated results print at `warn` and above, straggler/healed-fault
/// advisories at `info` and above.
fn report_status(outcome: &flexminer::MiningOutcome, level: LogLevel) {
    let warn = level.allows(LogLevel::Warn);
    let info = level.allows(LogLevel::Info);
    if let Some(err) = outcome.checkpoint_error() {
        if warn {
            eprintln!("warning: checkpointing stopped: {err}");
        }
    }
    if info {
        for s in outcome.stragglers() {
            eprintln!(
                "straggler: start vertex {} took {:.3?} (run median {:.3?})",
                s.vid, s.elapsed, s.median
            );
        }
    }
    if outcome.is_complete() {
        // A retried-then-healed fault leaves a record on a complete run.
        if info {
            for f in outcome.faults() {
                eprintln!(
                    "fault (healed on retry): start vertex {} attempt {}: {}",
                    f.vid, f.attempt, f.payload
                );
            }
        }
        return;
    }
    if !warn {
        return;
    }
    eprintln!(
        "warning: run ended {:?}; counts cover {} completed start vertices",
        outcome.status(),
        outcome.completed_start_vertices().len()
    );
    for f in outcome.faults() {
        eprintln!("fault: start vertex {} attempt {}: {}", f.vid, f.attempt, f.payload);
    }
    for f in outcome.quarantined() {
        eprintln!("quarantined: start vertex {} after {} attempt(s)", f.vid, f.attempt + 1);
    }
}

/// Telemetry exports and verbosity shared by `count` and `sim`.
struct TelemetryFlags {
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    level: LogLevel,
}

impl TelemetryFlags {
    /// Parses `--metrics-out`, `--trace-out`, and `--log-level`.
    fn parse(args: &[String]) -> Result<TelemetryFlags, String> {
        let level = flag_value(args, "--log-level").map_or(Ok(LogLevel::Info), |v| {
            LogLevel::parse(v).map_err(|e| format!("bad --log-level: {e}"))
        })?;
        Ok(TelemetryFlags {
            metrics_out: flag_value(args, "--metrics-out").map(PathBuf::from),
            trace_out: flag_value(args, "--trace-out").map(PathBuf::from),
            level,
        })
    }

    /// Assembles the engine-side run options: metrics collection is implied
    /// by `--metrics-out`, span tracing by `--trace-out`, live progress by
    /// `--progress` / `--heartbeat`.
    fn engine_options(&self, args: &[String]) -> Result<TelemetryOptions, String> {
        let progress = match (flag_value(args, "--progress"), flag_value(args, "--heartbeat")) {
            (None, None) => None,
            (cadence, heartbeat) => {
                let cadence = cadence
                    .map_or(Ok(fm_telemetry::ProgressCadence::Tasks(64)), |v| {
                        parse_cadence(v).map_err(|e| format!("bad --progress: {e}"))
                    })?;
                Some(ProgressOptions { cadence, heartbeat: heartbeat.map(PathBuf::from) })
            }
        };
        Ok(TelemetryOptions {
            metrics: self.metrics_out.is_some(),
            trace: self.trace_out.is_some().then(TraceClock::start),
            span_capacity: None,
            progress,
        })
    }

    /// Writes the metrics document and/or trace JSON the user asked for.
    fn export(
        &self,
        metrics: impl FnOnce() -> fm_telemetry::MetricsDoc,
        trace: impl FnOnce() -> String,
    ) -> Result<(), String> {
        if let Some(path) = &self.metrics_out {
            report::write_metrics(path, &metrics())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, trace()).map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        Ok(())
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "flexminer — pattern-aware graph pattern mining (FlexMiner, ISCA'21 reproduction)

commands:
  plan  <pattern>                           print the compiled execution plan (IR)
  count <pattern> --graph <input> [flags]   mine with the software engine
        [--induced] [--threads N] [--no-symmetry]
        [--timeout SECS] [--budget SETOP_ITERS]
        [--no-hub-bitmap] [--hub-threshold DEGREE] [--hub-budget BYTES]
        [--no-simd] [--no-reuse] [--reuse-budget BYTES]
        [--checkpoint PATH] [--checkpoint-interval N|SECSs] [--resume PATH]
        [--max-retries K]
        [--metrics-out PATH] [--trace-out PATH] [--progress N|Ns]
        [--heartbeat PATH] [--log-level error|warn|info|debug]
  sim   <pattern> --graph <input> [flags]   mine on the simulated accelerator
        [--pes N] [--cmap BYTES|unlimited|none] [--energy] [--induced]
        [--watchdog CYCLES]
        [--metrics-out PATH] [--trace-out PATH]
        [--log-level error|warn|info|debug]
  motifs <k> --graph <input> [--threads N]  k-motif census (vertex-induced)
  generate <spec> --out <file>              write a synthetic graph as an edge list
  stats --graph <input>                     print graph statistics
  serve [flags]                             multi-job supervisor speaking JSONL
        [--socket PATH] [--spool DIR] [--exit-when-idle]
        [--workers N] [--max-running N] [--queue-capacity N]
        [--memory-budget BYTES] [--stint-tasks N] [--max-attempts K]

inputs:
  a path to an edge-list file, or gen:<kind>,k=v,...  with kinds
  powerlaw (n,m,closure,seed), pa (n,m,seed), er (n,p,seed),
  complete (n), caveman (communities,size,bridges,seed)

durability (count only):
  --checkpoint PATH            write periodic atomic snapshots to PATH
  --checkpoint-interval N|Ns   cadence: N = every N completed tasks,
                               Ns (trailing 's') = every N seconds
                               (default: 256 tasks or 10s)
  --resume PATH                continue from a snapshot; completed start
                               vertices are skipped, final counts are
                               bit-identical to an uninterrupted run, and a
                               graph/plan/config mismatch is a hard error
  --max-retries K              retry a faulted task K times before
                               quarantining it (default 0)

telemetry (off by default; defaults stay bit-identical):
  --metrics-out PATH           write run metrics: Prometheus text for .prom
                               or .txt extensions, JSON otherwise. count
                               adds depth/tier-resolved set-op series and
                               task/frontier histograms; sim adds per-PE
                               FSM-state occupancy and machine totals
  --trace-out PATH             write Chrome trace_event JSON (open in
                               chrome://tracing or Perfetto). count emits
                               prepare/mine/task/checkpoint spans; sim
                               emits machine counter tracks (1 cycle = 1us
                               on the viewer's axis)
  --progress N|Ns (count)      live progress to stderr every N tasks, or
                               every N seconds with a trailing 's'
  --heartbeat PATH (count)     append one JSON progress object per report
  --log-level LEVEL            stderr verbosity (default info); error
                               silences advisories, warn keeps truncation
                               warnings

serve protocol (JSONL, one object per line, over stdio or --socket):
  {{\"op\":\"submit\",\"pattern\":P,\"graph\":G[,\"name\":S,\"induced\":B,
   \"threads\":N,\"priority\":N,\"max_attempts\":K,
   \"budget\":SETOP_ITERS,\"deadline\":SECS]}}          admit a job
   (per-job budget/deadline stop with exit codes 4/3 and exact partial
   counts; both survive a drain, the deadline re-anchors at resume)
  {{\"op\":\"wait\",\"id\":N}}    block until the job's terminal outcome
  {{\"op\":\"status\"}}          supervisor gauges   {{\"op\":\"cancel\",\"id\":N}}
  {{\"op\":\"metrics\"[,\"format\":\"prometheus\"]}}    exporter document
  {{\"op\":\"shutdown\"}}        drain to --spool checkpoints and exit
  SIGTERM drains identically; restarting with the same --spool resumes
  every drained job bit-for-bit

exit codes:
  0 complete   1 error (incl. checkpoint mismatch)   2 usage   3 deadline
  exceeded   4 budget exhausted   5 cancelled   6 degraded (tasks
  quarantined after exhausting retries)   7 watchdog tripped;
  codes 3-6 still print exact counts for the completed start vertices.
  serve job outcomes reuse 0-6 and add 8 (rejected by admission control)
  and 9 (drained to a checkpoint at shutdown)"
    );
    exit(if msg.is_empty() { 0 } else { 2 });
}

type CliResult = Result<i32, String>;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_pattern(args: &[String]) -> Result<Pattern, String> {
    let spec = args.first().ok_or("missing <pattern> argument")?;
    spec.parse::<Pattern>().map_err(|e| format!("bad pattern {spec:?}: {e}"))
}

fn load_graph(args: &[String]) -> Result<CsrGraph, String> {
    let input = flag_value(args, "--graph").ok_or("missing --graph <input>")?;
    graphspec::load(input)
}

fn cmd_plan(args: &[String]) -> CliResult {
    let pattern = parse_pattern(args)?;
    // The plan is graph-independent; a trivial graph satisfies the builder.
    let g = generators::complete(2);
    let mut job = Miner::new(&g).pattern(pattern);
    if has_flag(args, "--induced") {
        job = job.induced(true);
    }
    if has_flag(args, "--no-symmetry") {
        job = job.symmetry(false);
    }
    let plan = job.plan().map_err(|e| e.to_string())?;
    print!("{plan}");
    Ok(0)
}

fn cmd_count(args: &[String], _induced_default: bool) -> CliResult {
    let pattern = parse_pattern(args)?;
    let g = load_graph(args)?;
    let threads = flag_value(args, "--threads")
        .map_or(Ok(1), |v| v.parse::<usize>().map_err(|e| e.to_string()))?;
    let mut cfg = EngineConfig::with_threads(threads);
    if has_flag(args, "--no-hub-bitmap") {
        cfg.hub_bitmap = false;
    }
    if has_flag(args, "--no-simd") {
        cfg.simd = false;
    }
    if has_flag(args, "--no-reuse") {
        cfg.reuse = false;
    }
    if let Some(v) = flag_value(args, "--reuse-budget") {
        cfg.reuse_memory_budget = v.parse().map_err(|e| format!("bad --reuse-budget: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--hub-threshold") {
        cfg.hub_degree_threshold = v.parse().map_err(|e| format!("bad --hub-threshold: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--hub-budget") {
        cfg.hub_memory_budget = v.parse().map_err(|e| format!("bad --hub-budget: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--max-retries") {
        cfg.max_retries = v.parse().map_err(|e| format!("bad --max-retries: {e}"))?;
    }
    let mut job = Miner::new(&g).pattern(pattern).backend(Backend::Software(cfg));
    if has_flag(args, "--induced") {
        job = job.induced(true);
    }
    if has_flag(args, "--no-symmetry") {
        job = job.symmetry(false);
    }
    if let Some(v) = flag_value(args, "--budget") {
        let iters: u64 = v.parse().map_err(|e| format!("bad --budget: {e}"))?;
        job = job.budget(Budget::with_max_setop_iterations(iters));
    }
    if let Some(path) = flag_value(args, "--checkpoint") {
        job = job.checkpoint_to(path);
        if let Some(v) = flag_value(args, "--checkpoint-interval") {
            // A bare integer counts completed tasks; a trailing 's' makes
            // it a wall-clock period in seconds.
            job = match v.strip_suffix('s') {
                Some(secs) => {
                    let secs: f64 =
                        secs.parse().map_err(|e| format!("bad --checkpoint-interval: {e}"))?;
                    job.checkpoint_interval(None, Some(Duration::from_secs_f64(secs)))
                }
                None => {
                    let tasks: u64 =
                        v.parse().map_err(|e| format!("bad --checkpoint-interval: {e}"))?;
                    job.checkpoint_interval(Some(tasks), None)
                }
            };
        }
    } else if has_flag(args, "--checkpoint-interval") {
        return Err("--checkpoint-interval requires --checkpoint PATH".into());
    }
    if let Some(path) = flag_value(args, "--resume") {
        job = job.resume_from(path);
    }
    let telemetry = TelemetryFlags::parse(args)?;
    job = job.telemetry(telemetry.engine_options(args)?);
    let timeout = flag_value(args, "--timeout")
        .map(|v| v.parse::<f64>().map_err(|e| format!("bad --timeout: {e}")))
        .transpose()?;
    let start = std::time::Instant::now();
    let outcome = match timeout {
        // Anchor the deadline at the run, after graph loading.
        Some(secs) => job.run_with_deadline(Duration::from_secs_f64(secs)),
        None => job.run(),
    }
    .map_err(|e| e.to_string())?;
    for pc in outcome.per_pattern() {
        println!("{}: {}", pc.name, pc.count);
    }
    telemetry.export(|| report::engine_metrics(&outcome), || report::engine_trace(&outcome))?;
    report_status(&outcome, telemetry.level);
    if telemetry.level.allows(LogLevel::Info) {
        eprintln!("[{} threads, {:.3?}]", threads, start.elapsed());
    }
    Ok(exit_code(outcome.status()))
}

fn cmd_sim(args: &[String]) -> CliResult {
    let pattern = parse_pattern(args)?;
    let g = load_graph(args)?;
    let mut cfg = SimConfig::default();
    if let Some(v) = flag_value(args, "--pes") {
        cfg.num_pes = v.parse().map_err(|e| format!("bad --pes: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--cmap") {
        cfg.cmap_bytes = match v {
            "unlimited" => usize::MAX,
            "none" => 0,
            n => n.parse().map_err(|e| format!("bad --cmap: {e}"))?,
        };
    }
    if let Some(v) = flag_value(args, "--watchdog") {
        cfg.watchdog_cycles = v.parse().map_err(|e| format!("bad --watchdog: {e}"))?;
    }
    let telemetry = TelemetryFlags::parse(args)?;
    if telemetry.trace_out.is_some() {
        // Counter-track traces need the machine timeline; sample it at the
        // contention-resolution epoch (the simulator's finest honest
        // granularity).
        cfg.timeline_every = cfg.epoch;
    }
    let mut job = Miner::new(&g).pattern(pattern).backend(Backend::Accelerator(cfg));
    if has_flag(args, "--induced") {
        job = job.induced(true);
    }
    let outcome = match job.run() {
        Ok(outcome) => outcome,
        Err(MineError::WatchdogTripped(dump)) => {
            eprintln!(
                "error: watchdog tripped at {} cycles with {} PE(s) still working:",
                dump.cap,
                dump.stuck_pes().count()
            );
            for pe in &dump.pes {
                eprintln!(
                    "  PE {}: cycle {}, {} frame(s), top {}, embedding {:?}, {} task(s) claimed{}",
                    pe.pe,
                    pe.cycle,
                    pe.stack_depth,
                    pe.top_frame.as_deref().unwrap_or("<between tasks>"),
                    pe.embedding,
                    pe.tasks_claimed,
                    if pe.done { " [done]" } else { "" }
                );
            }
            return Ok(7);
        }
        Err(e) => return Err(e.to_string()),
    };
    let report = outcome.sim_report().expect("accelerator backend always reports");
    for pc in outcome.per_pattern() {
        println!("{}: {}", pc.name, pc.count);
    }
    telemetry.export(|| report::sim_metrics(&outcome, &cfg), || report::sim_trace(report))?;
    report_status(&outcome, telemetry.level);
    println!("cycles:            {}", report.cycles);
    println!("simulated time:    {:.6} s", report.seconds(&cfg));
    println!("PEs:               {}", cfg.num_pes);
    println!("tasks:             {}", report.totals.tasks);
    println!("extensions:        {}", report.totals.extensions);
    println!("SIU iterations:    {}", report.totals.siu_cycles);
    println!(
        "c-map r/w/inval:   {}/{}/{} (read ratio {:.1}%, overflows {})",
        report.totals.cmap_reads,
        report.totals.cmap_writes,
        report.totals.cmap_invalidations,
        100.0 * report.cmap_read_ratio(),
        report.totals.cmap_overflows
    );
    println!("NoC requests:      {}", report.noc_traffic());
    println!(
        "L2 accesses:       {} ({:.1}% miss)",
        report.l2_accesses,
        100.0 * report.l2_miss_rate()
    );
    println!("DRAM accesses:     {}", report.dram_accesses);
    println!("load imbalance:    {:.3}", report.imbalance());
    if has_flag(args, "--energy") {
        let e = EnergyModel::default().estimate(report, &cfg);
        println!(
            "energy estimate:   {:.3} mJ (pe {:.3}, siu {:.3}, cmap {:.3}, l1 {:.3}, l2 {:.3}, noc {:.3}, dram {:.3}, static {:.3})",
            e.total_mj(),
            e.pe_mj,
            e.siu_mj,
            e.cmap_mj,
            e.l1_mj,
            e.l2_mj,
            e.noc_mj,
            e.dram_mj,
            e.static_mj
        );
    }
    Ok(0)
}

fn cmd_motifs(args: &[String]) -> CliResult {
    let k: usize = args.first().ok_or("missing <k>")?.parse().map_err(|e| format!("bad k: {e}"))?;
    let g = load_graph(args)?;
    let threads = flag_value(args, "--threads")
        .map_or(Ok(1), |v| v.parse::<usize>().map_err(|e| e.to_string()))?;
    let census =
        apps::motif_census(&g, k, Backend::software(threads)).map_err(|e| e.to_string())?;
    for (name, count) in census {
        println!("{name}: {count}");
    }
    Ok(0)
}

fn cmd_generate(args: &[String]) -> CliResult {
    let spec = args.first().ok_or("missing <spec>")?;
    let spec = spec.strip_prefix("gen:").unwrap_or(spec);
    let out = flag_value(args, "--out").ok_or("missing --out <file>")?;
    let g = graphspec::generate(spec)?;
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    io::write_edge_list(&g, file).map_err(|e| e.to_string())?;
    eprintln!("wrote {} ({} vertices, {} edges)", out, g.num_vertices(), g.num_undirected_edges());
    Ok(0)
}

fn cmd_stats(args: &[String]) -> CliResult {
    let g = load_graph(args)?;
    let s = GraphStats::of(&g);
    println!("{s}");
    println!("symmetric: {}", g.is_symmetric());
    Ok(0)
}

fn cmd_serve(args: &[String]) -> CliResult {
    let mut sup = SupervisorConfig::default();
    if let Some(v) = flag_value(args, "--workers") {
        sup.workers = v.parse().map_err(|e| format!("bad --workers: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--max-running") {
        sup.max_running = v.parse().map_err(|e| format!("bad --max-running: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--queue-capacity") {
        sup.queue_capacity = v.parse().map_err(|e| format!("bad --queue-capacity: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--memory-budget") {
        sup.memory_budget_bytes = v.parse().map_err(|e| format!("bad --memory-budget: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--stint-tasks") {
        sup.stint_tasks = v.parse().map_err(|e| format!("bad --stint-tasks: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--max-attempts") {
        sup.max_attempts = v.parse().map_err(|e| format!("bad --max-attempts: {e}"))?;
    }
    let cfg = ServeConfig {
        socket: flag_value(args, "--socket").map(PathBuf::from),
        spool: flag_value(args, "--spool").map(PathBuf::from),
        exit_when_idle: has_flag(args, "--exit-when-idle"),
        supervisor: sup,
    };
    serve::run(cfg)
}
