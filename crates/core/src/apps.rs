//! The paper's four GPM applications as one-call functions (§II-A).

use crate::miner::{Backend, MineError, Miner, MiningOutcome};
use fm_graph::CsrGraph;
use fm_pattern::{motifs, Pattern};

/// Triangle counting (TC): "counts the number of triangles in G".
///
/// # Examples
///
/// ```
/// use flexminer::apps;
/// use fm_graph::generators;
///
/// let g = generators::complete(6);
/// assert_eq!(apps::triangle_count(&g, apps::default_backend())?, 20);
/// # Ok::<(), flexminer::MineError>(())
/// ```
///
/// # Errors
///
/// Propagates [`MineError`] from the underlying job (never fails for this
/// fixed single-pattern job in practice).
pub fn triangle_count(g: &CsrGraph, backend: Backend) -> Result<u64, MineError> {
    Ok(Miner::new(g).pattern(Pattern::triangle()).backend(backend).run()?.count())
}

/// k-clique listing (k-CL): counts all k-cliques, using the degree-
/// orientation optimization (§V-C).
///
/// # Errors
///
/// Propagates [`MineError`]; panics upstream if `k` exceeds the pattern
/// size limit.
pub fn k_clique_count(g: &CsrGraph, k: usize, backend: Backend) -> Result<u64, MineError> {
    Ok(Miner::new(g).pattern(Pattern::k_clique(k)).backend(backend).run()?.count())
}

/// Subgraph listing (SL): counts edge-induced embeddings of an arbitrary
/// user pattern.
///
/// # Errors
///
/// Propagates [`MineError`].
pub fn subgraph_count(g: &CsrGraph, pattern: &Pattern, backend: Backend) -> Result<u64, MineError> {
    Ok(Miner::new(g).pattern(pattern.clone()).backend(backend).run()?.count())
}

/// k-motif counting (k-MC): counts vertex-induced occurrences of every
/// connected k-vertex pattern simultaneously (multi-pattern mining).
///
/// Returns `(motif name, count)` pairs in the deterministic motif order of
/// [`fm_pattern::motifs::motifs`].
///
/// # Errors
///
/// Propagates [`MineError`].
///
/// # Panics
///
/// Panics if `k > 6` (motif enumeration limit).
pub fn motif_census(
    g: &CsrGraph,
    k: usize,
    backend: Backend,
) -> Result<Vec<(String, u64)>, MineError> {
    let ms = motifs::motifs(k);
    let outcome: MiningOutcome = Miner::new(g).patterns(ms).induced(true).backend(backend).run()?;
    Ok(outcome.per_pattern().iter().map(|p| (p.name.clone(), p.count)).collect())
}

/// The default backend used by examples: the software engine on all
/// available host threads.
pub fn default_backend() -> Backend {
    Backend::software(std::thread::available_parallelism().map_or(1, |n| n.get()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fm_graph::generators;

    #[test]
    fn triangle_count_on_oracles() {
        assert_eq!(triangle_count(&generators::complete(7), Backend::default()).unwrap(), 35);
        assert_eq!(triangle_count(&generators::cycle(8), Backend::default()).unwrap(), 0);
        assert_eq!(triangle_count(&generators::grid(4, 4), Backend::default()).unwrap(), 0);
    }

    #[test]
    fn clique_counts_on_complete_graph() {
        let g = generators::complete(9);
        assert_eq!(k_clique_count(&g, 4, Backend::default()).unwrap(), 126); // C(9,4)
        assert_eq!(k_clique_count(&g, 5, Backend::default()).unwrap(), 126); // C(9,5)
    }

    #[test]
    fn subgraph_count_four_cycles_in_bipartite() {
        let g = generators::complete_bipartite(4, 4);
        let n = subgraph_count(&g, &Pattern::cycle(4), Backend::default()).unwrap();
        assert_eq!(n, 36); // C(4,2)^2
    }

    #[test]
    fn motif_census_sums_to_subset_counts() {
        let g = generators::erdos_renyi(40, 0.3, 7);
        let census = motif_census(&g, 3, Backend::default()).unwrap();
        assert_eq!(census.len(), 2);
        let by_name: std::collections::HashMap<_, _> = census.into_iter().collect();
        // Wedges + triangles as induced counts must match the oblivious
        // oracle.
        let oracle =
            fm_engine::oblivious::count_induced(&g, &[Pattern::wedge(), Pattern::triangle()], 1);
        assert_eq!(by_name["wedge"], oracle.counts[0]);
        assert_eq!(by_name["triangle"], oracle.counts[1]);
    }

    #[test]
    fn accelerator_backend_works_in_apps() {
        let g = generators::powerlaw_cluster(100, 4, 0.5, 4);
        let sw = triangle_count(&g, Backend::default()).unwrap();
        let hw = triangle_count(&g, Backend::accelerator()).unwrap();
        assert_eq!(sw, hw);
    }
}
