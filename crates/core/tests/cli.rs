//! End-to-end tests of the `flexminer` binary's job-control surface:
//! `--timeout`/`--budget` on `count`, `--watchdog` on `sim`, and the
//! distinct exit codes scripts rely on.

use std::process::{Command, Output};

fn flexminer(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flexminer")).args(args).output().expect("binary should spawn")
}

const GRAPH: &str = "gen:powerlaw,n=400,m=5,closure=0.5,seed=3";

#[test]
fn complete_count_exits_zero_with_counts_on_stdout() {
    let out = flexminer(&["count", "triangle", "--graph", GRAPH]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("triangle: "), "stdout: {stdout}");
}

#[test]
fn zero_timeout_exits_with_deadline_code() {
    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--timeout", "0"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    // Counts are still printed (exact over the completed subset) and the
    // truncation is flagged on stderr.
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("triangle: "));
    assert!(String::from_utf8_lossy(&out.stderr).contains("DeadlineExceeded"));
}

#[test]
fn tiny_budget_exits_with_budget_code() {
    let out = flexminer(&["count", "4-cycle", "--graph", GRAPH, "--budget", "50"]);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("BudgetExhausted"));
}

#[test]
fn generous_budget_stays_complete() {
    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--budget", "1000000000"]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn watchdog_trip_exits_seven_with_fsm_dump() {
    let out = flexminer(&["sim", "4-clique", "--graph", GRAPH, "--pes", "1", "--watchdog", "1"]);
    assert_eq!(out.status.code(), Some(7), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("watchdog tripped"), "stderr: {stderr}");
    assert!(stderr.contains("PE 0:"), "stderr: {stderr}");
}

#[test]
fn generous_watchdog_sim_exits_zero() {
    let out = flexminer(&[
        "sim",
        "triangle",
        "--graph",
        "gen:er,n=60,p=0.1,seed=2",
        "--pes",
        "2",
        "--watchdog",
        "100000000",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn bad_flag_values_exit_one() {
    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--timeout", "soon"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --timeout"));
}
