//! End-to-end tests of the `flexminer` binary's job-control surface:
//! `--timeout`/`--budget` on `count`, `--watchdog` on `sim`, and the
//! distinct exit codes scripts rely on.

use std::process::{Command, Output};

fn flexminer(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_flexminer")).args(args).output().expect("binary should spawn")
}

const GRAPH: &str = "gen:powerlaw,n=400,m=5,closure=0.5,seed=3";

#[test]
fn complete_count_exits_zero_with_counts_on_stdout() {
    let out = flexminer(&["count", "triangle", "--graph", GRAPH]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("triangle: "), "stdout: {stdout}");
}

#[test]
fn zero_timeout_exits_with_deadline_code() {
    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--timeout", "0"]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    // Counts are still printed (exact over the completed subset) and the
    // truncation is flagged on stderr.
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("triangle: "));
    assert!(String::from_utf8_lossy(&out.stderr).contains("DeadlineExceeded"));
}

#[test]
fn tiny_budget_exits_with_budget_code() {
    let out = flexminer(&["count", "4-cycle", "--graph", GRAPH, "--budget", "50"]);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("BudgetExhausted"));
}

#[test]
fn generous_budget_stays_complete() {
    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--budget", "1000000000"]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn watchdog_trip_exits_seven_with_fsm_dump() {
    let out = flexminer(&["sim", "4-clique", "--graph", GRAPH, "--pes", "1", "--watchdog", "1"]);
    assert_eq!(out.status.code(), Some(7), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("watchdog tripped"), "stderr: {stderr}");
    assert!(stderr.contains("PE 0:"), "stderr: {stderr}");
}

#[test]
fn generous_watchdog_sim_exits_zero() {
    let out = flexminer(&[
        "sim",
        "triangle",
        "--graph",
        "gen:er,n=60,p=0.1,seed=2",
        "--pes",
        "2",
        "--watchdog",
        "100000000",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn bad_flag_values_exit_one() {
    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--timeout", "soon"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --timeout"));
}

/// A unique checkpoint path per call, so parallel test binaries and reruns
/// never collide on stale files.
fn temp_ckpt(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fm-cli-ckpt-{}-{tag}-{n}.bin", std::process::id()))
}

/// The durability loop end to end through the binary: a budget-cut run
/// writes a snapshot (exit 4), and `--resume` finishes the job with the
/// exact same stdout as an uninterrupted run (exit 0).
#[test]
fn interrupted_count_resumes_to_the_exact_full_total() {
    let path = temp_ckpt("resume");
    let ckpt = path.to_str().unwrap();
    let full = flexminer(&["count", "4-cycle", "--graph", GRAPH]);
    assert_eq!(full.status.code(), Some(0));

    let cut = flexminer(&[
        "count",
        "4-cycle",
        "--graph",
        GRAPH,
        "--budget",
        "500",
        "--checkpoint",
        ckpt,
        "--checkpoint-interval",
        "1",
    ]);
    assert_eq!(cut.status.code(), Some(4), "stderr: {}", String::from_utf8_lossy(&cut.stderr));
    assert!(path.exists(), "budget-cut run must leave a snapshot behind");

    let resumed = flexminer(&["count", "4-cycle", "--graph", GRAPH, "--resume", ckpt]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(resumed.stdout, full.stdout, "resumed totals must be bit-identical");
    let _ = std::fs::remove_file(&path);
}

/// Resuming against a different graph is a structured refusal (exit 1
/// with the fingerprint message), never a silently wrong count.
#[test]
fn resume_against_a_different_graph_exits_one() {
    let path = temp_ckpt("mismatch");
    let ckpt = path.to_str().unwrap();
    let seed = flexminer(&[
        "count",
        "triangle",
        "--graph",
        GRAPH,
        "--checkpoint",
        ckpt,
        "--checkpoint-interval",
        "64",
    ]);
    assert_eq!(seed.status.code(), Some(0));
    let out =
        flexminer(&["count", "triangle", "--graph", "gen:er,n=60,p=0.1,seed=2", "--resume", ckpt]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("different graph"), "stderr: {stderr}");
    let _ = std::fs::remove_file(&path);
}

/// A missing snapshot is an IO refusal, and flag misuse is caught before
/// any mining starts.
#[test]
fn durability_flag_misuse_exits_one() {
    let missing = temp_ckpt("missing");
    let out =
        flexminer(&["count", "triangle", "--graph", GRAPH, "--resume", missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("checkpoint io"));

    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--checkpoint-interval", "8"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --checkpoint"));

    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--max-retries", "many"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --max-retries"));
}

/// `--max-retries` parses and a healthy run stays exit 0 (the retry knob
/// only matters when faults fire).
#[test]
fn max_retries_on_a_healthy_run_stays_complete() {
    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--max-retries", "3"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("triangle: "));
}

/// Naive JSON structural check, good enough to validate trace/heartbeat
/// shape without a parser dependency: balanced braces and the expected
/// markers present.
fn assert_json_object(s: &str, markers: &[&str]) {
    let opens = s.matches('{').count();
    let closes = s.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces in {s:.200}");
    assert!(opens > 0, "no JSON object in {s:.200}");
    for m in markers {
        assert!(s.contains(m), "missing {m:?} in {s:.200}");
    }
}

/// `count --metrics-out/--trace-out` writes Prometheus text (by extension)
/// and valid Chrome trace JSON, while stdout stays byte-identical to a
/// plain run (telemetry is observation, never perturbation).
#[test]
fn count_telemetry_exports_and_stays_bit_identical() {
    let prom = temp_ckpt("metrics").with_extension("prom");
    let trace = temp_ckpt("trace").with_extension("json");
    let plain = flexminer(&["count", "4-clique", "--graph", GRAPH, "--threads", "4"]);
    assert_eq!(plain.status.code(), Some(0));
    let observed = flexminer(&[
        "count",
        "4-clique",
        "--graph",
        GRAPH,
        "--threads",
        "4",
        "--metrics-out",
        prom.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(
        observed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&observed.stderr)
    );
    assert_eq!(observed.stdout, plain.stdout, "telemetry must not change counts");

    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(prom_text.contains("# TYPE fm_pattern_count counter"), "{prom_text:.300}");
    assert!(prom_text.contains("fm_depth_setop_iterations{depth=\"1\"}"), "{prom_text:.300}");
    assert!(prom_text.contains("fm_dispatches{tier="), "{prom_text:.300}");
    assert!(prom_text.contains("fm_task_wall_time_us_bucket"), "{prom_text:.300}");

    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert_json_object(
        &trace_text,
        &["\"traceEvents\"", "\"name\":\"mine\"", "\"name\":\"start-vertex-task\"", "\"ph\":\"X\""],
    );
    let _ = std::fs::remove_file(&prom);
    let _ = std::fs::remove_file(&trace);
}

/// `--progress` emits live lines on stderr and `--heartbeat` appends JSONL
/// snapshots; `--log-level error` silences the advisory footer.
#[test]
fn progress_and_heartbeat_report_live_state() {
    let heartbeat = temp_ckpt("heartbeat").with_extension("jsonl");
    let out = flexminer(&[
        "count",
        "triangle",
        "--graph",
        GRAPH,
        "--progress",
        "64",
        "--heartbeat",
        heartbeat.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[progress]"), "stderr: {stderr}");
    assert!(stderr.contains("status Complete"), "stderr: {stderr}");
    let lines = std::fs::read_to_string(&heartbeat).unwrap();
    let last = lines.lines().last().expect("at least the final heartbeat");
    assert_json_object(last, &["\"done\"", "\"total\"", "\"status\":\"Complete\""]);

    let quiet = flexminer(&["count", "triangle", "--graph", GRAPH, "--log-level", "error"]);
    assert_eq!(quiet.status.code(), Some(0));
    let quiet_err = String::from_utf8_lossy(&quiet.stderr);
    assert!(!quiet_err.contains("threads"), "stderr should be silent: {quiet_err}");
    let _ = std::fs::remove_file(&heartbeat);
}

/// `sim --metrics-out/--trace-out`: per-PE FSM occupancy lands in the
/// metrics document and the machine timeline renders as counter tracks.
#[test]
fn sim_telemetry_exports_occupancy_and_timeline() {
    let prom = temp_ckpt("sim-metrics").with_extension("txt");
    let trace = temp_ckpt("sim-trace").with_extension("json");
    let out = flexminer(&[
        "sim",
        "triangle",
        "--graph",
        GRAPH,
        "--pes",
        "4",
        "--metrics-out",
        prom.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(
        prom_text.contains("fm_sim_pe_occupancy_cycles{pe=\"0\",state=\"Idle\"}"),
        "{prom_text:.400}"
    );
    assert!(
        prom_text.contains("fm_sim_pe_occupancy_cycles{pe=\"3\",state=\"IteratingEdges\"}"),
        "{prom_text:.400}"
    );
    assert!(prom_text.contains("fm_sim_cycles"), "{prom_text:.400}");
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert_json_object(&trace_text, &["\"traceEvents\"", "\"ph\":\"C\"", "pe_utilization"]);
    let _ = std::fs::remove_file(&prom);
    let _ = std::fs::remove_file(&trace);
}

/// Bad telemetry flag values fail fast, before any mining starts.
#[test]
fn bad_telemetry_flags_exit_one() {
    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--progress", "0"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --progress"));

    let out = flexminer(&["count", "triangle", "--graph", GRAPH, "--log-level", "loud"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad --log-level"));
}
