//! End-to-end tests for `flexminer serve`: the JSONL protocol over real
//! process stdio, and the SIGTERM drain → restart → bit-identical resume
//! contract over a unix socket.
#![cfg(unix)]

use flexminer::{Miner, Pattern};
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flexminer"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fm-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Extracts `"counts":[...]` from a serve response/event line.
fn counts_of(line: &str) -> Vec<u64> {
    let (_, rest) = line.split_once("\"counts\":[").expect("line carries counts");
    let (body, _) = rest.split_once(']').expect("counts array closes");
    body.split(',').filter(|s| !s.is_empty()).map(|s| s.trim().parse().unwrap()).collect()
}

fn wait_exit(mut child: Child, secs: u64) -> (i32, String) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                let mut out = String::new();
                if let Some(mut stdout) = child.stdout.take() {
                    let _ = stdout.read_to_string(&mut out);
                }
                return (status.code().unwrap_or(-1), out);
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("serve did not exit within {secs}s");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// The stdio transport end to end: ready banner, submit/wait/status
/// responses, EOF-triggered idle exit, and the sorted summary lines.
#[test]
fn stdio_submit_wait_and_eof_exit() {
    let mut child = bin()
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    writeln!(
        stdin,
        "{{\"op\":\"submit\",\"name\":\"tri\",\"pattern\":\"triangle\",\"graph\":\"gen:complete,n=8\"}}"
    )
    .unwrap();
    writeln!(stdin, "{{\"op\":\"wait\",\"id\":1}}").unwrap();
    writeln!(stdin, "{{\"op\":\"status\"}}").unwrap();
    drop(stdin); // EOF: serve finishes the job table and exits
    let (code, out) = wait_exit(child, 60);
    assert_eq!(code, 0, "stdout: {out}");
    let lines: Vec<&str> = out.lines().collect();
    assert!(lines[0].contains("\"event\":\"ready\""), "{out}");
    assert!(lines[1].contains("\"ok\":true") && lines[1].contains("\"id\":1"), "{out}");
    assert!(lines[2].contains("\"outcome\":\"finished\""), "{out}");
    assert!(lines[2].contains("\"exit_code\":0"), "{out}");
    // complete(8) holds C(8,3) = 56 triangles.
    assert_eq!(counts_of(lines[2]), vec![56], "{out}");
    assert!(lines[3].contains("\"submitted\":1"), "{out}");
    let event = lines.iter().find(|l| l.contains("\"event\":\"job\"")).expect("summary line");
    assert!(event.contains("\"name\":\"tri\"") && event.contains("\"exit_code\":0"), "{out}");
}

/// Per-job budget semantics end to end: a submit carrying a one-iteration
/// `budget` stops early with `BudgetExhausted` and the `count` command's
/// exit code 4 on both the wait response and the summary line, while an
/// uncapped submit of the same job still completes — the cap is per job,
/// not per server.
#[test]
fn stdio_submit_budget_reports_exit_code_4() {
    const GRAPH: &str = "gen:powerlaw,n=800,m=4,closure=0.5,seed=9";
    let mut child = bin()
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    writeln!(
        stdin,
        "{{\"op\":\"submit\",\"name\":\"capped\",\"pattern\":\"4-cycle\",\"graph\":\"{GRAPH}\",\"budget\":1}}"
    )
    .unwrap();
    writeln!(
        stdin,
        "{{\"op\":\"submit\",\"name\":\"free\",\"pattern\":\"4-cycle\",\"graph\":\"{GRAPH}\"}}"
    )
    .unwrap();
    writeln!(stdin, "{{\"op\":\"wait\",\"id\":1}}").unwrap();
    writeln!(stdin, "{{\"op\":\"wait\",\"id\":2}}").unwrap();
    drop(stdin);
    let (code, out) = wait_exit(child, 120);
    // The process exit code stays 0 — per-job stops are job outcomes, not
    // server failures.
    assert_eq!(code, 0, "stdout: {out}");
    let lines: Vec<&str> = out.lines().collect();
    let capped_wait = lines[3];
    assert!(capped_wait.contains("\"status\":\"BudgetExhausted\""), "{out}");
    assert!(capped_wait.contains("\"exit_code\":4"), "{out}");
    assert!(capped_wait.contains("\"counts\":["), "partial counts must still report: {out}");
    let free_wait = lines[4];
    assert!(free_wait.contains("\"status\":\"Complete\""), "{out}");
    assert!(free_wait.contains("\"exit_code\":0"), "{out}");
    let capped_event = lines
        .iter()
        .find(|l| l.contains("\"event\":\"job\"") && l.contains("\"name\":\"capped\""))
        .expect("summary line for the capped job");
    assert!(capped_event.contains("\"exit_code\":4"), "{out}");
}

fn connect(path: &Path, secs: u64) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Ok(s) = UnixStream::connect(path) {
            return s;
        }
        assert!(Instant::now() < deadline, "socket {} never came up", path.display());
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn request(stream: &mut UnixStream, line: &str) -> String {
    writeln!(stream, "{line}").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    resp
}

/// The robustness contract end to end: jobs submitted over the socket,
/// SIGTERM mid-run, drain to spooled checkpoints, restart with the same
/// spool, and final counts bit-identical to an uninterrupted run.
#[test]
fn socket_sigterm_drain_restart_is_bit_identical() {
    const GRAPH: &str = "gen:powerlaw,n=6000,m=4,closure=0.5,seed=11";
    let dir = temp_dir("sigterm");
    let sock = dir.join("serve.sock");
    let spool = dir.join("spool");

    // In-process reference for the same job.
    let g = flexminer::graphspec::load(GRAPH).unwrap();
    let reference = Miner::new(&g).pattern(Pattern::cycle(4)).run().unwrap().counts();

    let child = bin()
        .args(["serve", "--socket", sock.to_str().unwrap(), "--spool", spool.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let pid = child.id().to_string();
    let mut conn = connect(&sock, 30);
    let resp = request(
        &mut conn,
        &format!(r#"{{"op":"submit","name":"big","pattern":"4-cycle","graph":"{GRAPH}"}}"#),
    );
    assert!(resp.contains("\"ok\":true"), "{resp}");
    // SIGTERM while the job is mid-run: the process must drain, not die.
    let killed = Command::new("kill").args(["-TERM", &pid]).status().unwrap();
    assert!(killed.success());
    let (code, out) = wait_exit(child, 60);
    assert_eq!(code, 0, "drain exit must be clean; stdout: {out}");
    assert!(!out.contains("\"event\":\"job\""), "job should have drained, not finished: {out}");
    assert!(spool.join("manifest.jsonl").exists(), "drain must spool a resume manifest");

    // Restart with the same spool: the manifest resumes the job, which
    // runs to completion and reports counts identical to the reference.
    let restarted = bin()
        .args([
            "serve",
            "--socket",
            sock.to_str().unwrap(),
            "--spool",
            spool.to_str().unwrap(),
            "--exit-when-idle",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let (code, out) = wait_exit(restarted, 120);
    assert_eq!(code, 0, "stdout: {out}");
    let event = out
        .lines()
        .find(|l| l.contains("\"event\":\"job\"") && l.contains("\"name\":\"big\""))
        .unwrap_or_else(|| panic!("resumed job must report a summary line: {out}"));
    assert!(event.contains("\"status\":\"Complete\""), "{event}");
    assert_eq!(counts_of(event), reference, "drained + resumed counts must be bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overload over the wire: a saturated supervisor sheds the extra job
/// with an explicit rejection on the submit response (exit code 8).
#[test]
fn socket_rejects_jobs_beyond_admission_limits() {
    let dir = temp_dir("reject");
    let sock = dir.join("serve.sock");
    let child = bin()
        .args(["serve", "--socket", sock.to_str().unwrap(), "--queue-capacity", "1"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut conn = connect(&sock, 30);
    let a = request(
        &mut conn,
        r#"{"op":"submit","name":"a","pattern":"4-cycle","graph":"gen:powerlaw,n=4000,m=4,closure=0.5,seed=3"}"#,
    );
    assert!(a.contains("\"ok\":true"), "{a}");
    let b = request(
        &mut conn,
        r#"{"op":"submit","name":"b","pattern":"triangle","graph":"gen:complete,n=8"}"#,
    );
    assert!(b.contains("\"outcome\":\"rejected\""), "{b}");
    assert!(b.contains("\"exit_code\":8"), "{b}");
    assert!(b.contains("queue full"), "{b}");
    let resp = request(&mut conn, r#"{"op":"shutdown"}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let (code, _) = wait_exit(child, 60);
    assert_eq!(code, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
