//! Golden-file tests pinning the exporters byte-for-byte.
//!
//! The Prometheus text exposition, the metrics JSON encoding, and the
//! Chrome `trace_event` JSON are consumed by external tooling (scrapers,
//! plot scripts, `chrome://tracing` / Perfetto). These tests pin complete
//! documents — not substrings — so any change to an emitter is an
//! intentional, reviewed change to the golden bytes here.

use fm_telemetry::{chrome_trace_json, CounterEvent, Log2Histogram, MetricsDoc, Span};

/// A small document exercising every metric shape: plain counter, plain
/// gauge, labelled counter vector, labelled gauge vector, and a histogram.
fn representative_doc() -> MetricsDoc {
    let mut doc = MetricsDoc::new();
    doc.counter("fm_tasks", "Completed start-vertex tasks", 300);
    doc.gauge("fm_cmap_hit_rate", "c-map hits / queries", 0.75);
    doc.counter_vec(
        "fm_dispatches",
        "Dispatcher routing by kernel tier",
        &[(&[("tier", "merge")], 120), (&[("tier", "gallop")], 30), (&[("tier", "probe")], 6)],
    );
    doc.gauge_vec("fm_run_status", "Run status flag", &[(&[("status", "Complete")], 1.0)]);
    let mut h = Log2Histogram::new();
    h.record(1); // bucket 1 (le 1)
    h.record(3); // bucket 2 (le 3)
    h.record(3);
    doc.log2_histogram("fm_frontier_size", "Frontier lengths", &[("depth", "2")], &h);
    doc
}

#[test]
fn prometheus_exposition_bytes_are_pinned() {
    assert_eq!(
        representative_doc().to_prometheus(),
        "\
# HELP fm_tasks Completed start-vertex tasks
# TYPE fm_tasks counter
fm_tasks 300
# HELP fm_cmap_hit_rate c-map hits / queries
# TYPE fm_cmap_hit_rate gauge
fm_cmap_hit_rate 0.75
# HELP fm_dispatches Dispatcher routing by kernel tier
# TYPE fm_dispatches counter
fm_dispatches{tier=\"merge\"} 120
fm_dispatches{tier=\"gallop\"} 30
fm_dispatches{tier=\"probe\"} 6
# HELP fm_run_status Run status flag
# TYPE fm_run_status gauge
fm_run_status{status=\"Complete\"} 1
# HELP fm_frontier_size Frontier lengths
# TYPE fm_frontier_size histogram
fm_frontier_size_bucket{depth=\"2\",le=\"0\"} 0
fm_frontier_size_bucket{depth=\"2\",le=\"1\"} 1
fm_frontier_size_bucket{depth=\"2\",le=\"3\"} 3
fm_frontier_size_bucket{depth=\"2\",le=\"+Inf\"} 3
fm_frontier_size_sum 7
fm_frontier_size_count 3
"
    );
}

#[test]
fn metrics_json_bytes_are_pinned() {
    let mut doc = MetricsDoc::new();
    doc.counter("fm_tasks", "Completed tasks", 7);
    let mut h = Log2Histogram::new();
    h.record(2);
    doc.log2_histogram("fm_t", "Times", &[], &h);
    assert_eq!(
        doc.to_json(),
        "{\"metrics\":[\
         {\"name\":\"fm_tasks\",\"help\":\"Completed tasks\",\"type\":\"counter\",\
         \"samples\":[{\"labels\":{},\"value\":7}]},\
         {\"name\":\"fm_t\",\"help\":\"Times\",\"type\":\"histogram\",\
         \"samples\":[{\"labels\":{\"le\":\"0\"},\"value\":0},\
         {\"labels\":{\"le\":\"1\"},\"value\":0},\
         {\"labels\":{\"le\":\"3\"},\"value\":1},\
         {\"labels\":{\"le\":\"+Inf\"},\"value\":1}],\
         \"sum\":2,\"count\":1}\
         ]}"
    );
}

#[test]
fn chrome_trace_bytes_are_pinned() {
    let spans = [
        Span { ts_us: 0, dur_us: 120, tid: 0, name: "mine", cat: "engine", arg: None },
        Span {
            ts_us: 10,
            dur_us: 30,
            tid: 1,
            name: "start-vertex-task",
            cat: "engine",
            arg: Some(("vid", 42)),
        },
    ];
    let counters = [CounterEvent {
        ts_us: 4096,
        name: "machine".to_string(),
        series: vec![("pe_utilization".to_string(), 0.5), ("done_pes".to_string(), 3.0)],
    }];
    assert_eq!(
        chrome_trace_json("fm-engine", &spans, &counters),
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
         {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"fm-engine\"}},\
         {\"name\":\"mine\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":0,\"dur\":120,\"pid\":1,\"tid\":0},\
         {\"name\":\"start-vertex-task\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":10,\"dur\":30,\"pid\":1,\"tid\":1,\"args\":{\"vid\":42}},\
         {\"name\":\"machine\",\"ph\":\"C\",\"ts\":4096,\"pid\":1,\"args\":{\"pe_utilization\":0.5,\"done_pes\":3}}\
         ]}"
    );
}

#[test]
fn empty_trace_is_a_valid_document() {
    assert_eq!(
        chrome_trace_json("fm-engine", &[], &[]),
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
         {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"fm-engine\"}}\
         ]}"
    );
}
