//! Per-worker telemetry shards and their commutative merge.
//!
//! Each mining worker accumulates depth-resolved work counters, log2
//! histograms, and a span buffer privately (no locks, no cross-worker
//! traffic). At join time the shards are merged into one
//! [`TelemetryShard`] carried on the mining result. Merging is
//! commutative and associative — element-wise addition for counters and
//! histograms, concatenate-then-sort for spans — so the merged shard is
//! identical however the workers are interleaved or joined. A property
//! test pins this across thread counts {1, 4, 7}.

use crate::hist::Log2Histogram;
use crate::trace::Span;

/// Aggregated telemetry for one run (or one worker, pre-merge).
///
/// Depth-indexed vectors are indexed by embedding depth (the DFS level of
/// the plan node charging the work) and grow on demand; merging resizes
/// to the longer of the two.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TelemetryShard {
    /// Set-op merge-loop iterations charged at each depth.
    pub depth_setop_iterations: Vec<u64>,
    /// Set-op kernel invocations at each depth.
    pub depth_setop_invocations: Vec<u64>,
    /// Adaptive dispatches resolved to the merge tier, per depth.
    pub depth_merge: Vec<u64>,
    /// Adaptive dispatches resolved to the gallop tier, per depth.
    pub depth_gallop: Vec<u64>,
    /// Adaptive dispatches resolved to the hub-bitmap probe tier, per depth.
    pub depth_probe: Vec<u64>,
    /// Adaptive dispatches resolved to the SIMD tier, per depth.
    pub depth_simd: Vec<u64>,
    /// Set-op dispatches served from a cached reuse prefix, per depth.
    pub depth_reuse: Vec<u64>,
    /// Reuse-prefix materializations (bitmap builds), per depth.
    pub depth_prefix_builds: Vec<u64>,
    /// c-map membership queries charged per depth.
    pub depth_cmap_queries: Vec<u64>,
    /// c-map query hits per depth.
    pub depth_cmap_hits: Vec<u64>,
    /// Sizes of materialized frontiers (log2 buckets).
    pub frontier_sizes: Log2Histogram,
    /// Start-vertex task wall times in microseconds (log2 buckets).
    pub task_micros: Log2Histogram,
    /// Collected spans, kept in the canonical [`Span`] sort order.
    pub spans: Vec<Span>,
    /// Spans dropped by full rings.
    pub dropped_spans: u64,
    /// Progress/heartbeat reports skipped because the emitter lock was
    /// contended at report time (each skip is one missing line in the
    /// heartbeat JSONL, so a non-zero value explains gaps there).
    pub progress_dropped: u64,
}

fn add_resized(into: &mut Vec<u64>, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (a, b) in into.iter_mut().zip(from.iter()) {
        *a += b;
    }
}

/// Adds `delta` into `v[depth]`, growing the vector on demand.
#[inline]
pub fn charge_depth(v: &mut Vec<u64>, depth: usize, delta: u64) {
    if delta == 0 {
        return;
    }
    if v.len() <= depth {
        v.resize(depth + 1, 0);
    }
    v[depth] += delta;
}

impl TelemetryShard {
    /// An empty shard.
    pub fn new() -> TelemetryShard {
        TelemetryShard::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self == &TelemetryShard::default()
    }

    /// Appends spans drained from a worker ring.
    pub fn absorb_spans(&mut self, spans: Vec<Span>, dropped: u64) {
        self.spans.extend(spans);
        self.spans.sort_unstable();
        self.dropped_spans += dropped;
    }

    /// Merges another shard into this one. Commutative: `a.merge(b)` and
    /// `b.merge(a)` produce equal shards.
    pub fn merge(&mut self, other: &TelemetryShard) {
        add_resized(&mut self.depth_setop_iterations, &other.depth_setop_iterations);
        add_resized(&mut self.depth_setop_invocations, &other.depth_setop_invocations);
        add_resized(&mut self.depth_merge, &other.depth_merge);
        add_resized(&mut self.depth_gallop, &other.depth_gallop);
        add_resized(&mut self.depth_probe, &other.depth_probe);
        add_resized(&mut self.depth_simd, &other.depth_simd);
        add_resized(&mut self.depth_reuse, &other.depth_reuse);
        add_resized(&mut self.depth_prefix_builds, &other.depth_prefix_builds);
        add_resized(&mut self.depth_cmap_queries, &other.depth_cmap_queries);
        add_resized(&mut self.depth_cmap_hits, &other.depth_cmap_hits);
        self.frontier_sizes.merge(&other.frontier_sizes);
        self.task_micros.merge(&other.task_micros);
        self.spans.extend(other.spans.iter().copied());
        self.spans.sort_unstable();
        self.dropped_spans += other.dropped_spans;
        self.progress_dropped += other.progress_dropped;
    }

    /// The deepest depth with any charged set-op work, plus one.
    pub fn depth_len(&self) -> usize {
        [
            self.depth_setop_iterations.len(),
            self.depth_setop_invocations.len(),
            self.depth_merge.len(),
            self.depth_gallop.len(),
            self.depth_probe.len(),
            self.depth_simd.len(),
            self.depth_reuse.len(),
            self.depth_prefix_builds.len(),
            self.depth_cmap_queries.len(),
            self.depth_cmap_hits.len(),
        ]
        .into_iter()
        .max()
        .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(seed: u64, tid: u32) -> TelemetryShard {
        let mut s = TelemetryShard::new();
        charge_depth(&mut s.depth_setop_iterations, 2, seed + 5);
        charge_depth(&mut s.depth_merge, 1, seed);
        charge_depth(&mut s.depth_cmap_hits, 3, 1);
        s.frontier_sizes.record(seed);
        s.task_micros.record(seed * 100);
        s.absorb_spans(
            vec![Span {
                ts_us: seed,
                dur_us: 1,
                tid,
                name: "start-vertex-task",
                cat: "engine",
                arg: None,
            }],
            seed % 2,
        );
        s
    }

    #[test]
    fn merge_is_commutative() {
        let (a, b, c) = (shard(3, 0), shard(10, 1), shard(7, 2));
        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(abc, cba);
        assert_eq!(abc.depth_setop_iterations[2], 3 + 10 + 7 + 15);
        assert_eq!(abc.spans.len(), 3);
        assert_eq!(abc.dropped_spans, 2);
        assert_eq!(abc.depth_len(), 4);
    }

    #[test]
    fn charge_depth_grows_on_demand() {
        let mut v = Vec::new();
        charge_depth(&mut v, 3, 0); // zero delta must not allocate
        assert!(v.is_empty());
        charge_depth(&mut v, 3, 2);
        assert_eq!(v, vec![0, 0, 0, 2]);
        charge_depth(&mut v, 0, 1);
        assert_eq!(v, vec![1, 0, 0, 2]);
    }

    #[test]
    fn empty_shard_reports_empty() {
        assert!(TelemetryShard::new().is_empty());
        assert!(!shard(1, 0).is_empty());
    }
}
