//! # fm-telemetry
//!
//! Observability core for the FlexMiner reproduction. Everything the
//! engine, the accelerator simulator, the CLI, and the bench harness emit
//! about a run — spans, depth-resolved work histograms, live progress,
//! machine-readable reports — funnels through this crate so there is one
//! JSON writer, one Prometheus text encoder, and one Chrome `trace_event`
//! exporter for the whole workspace.
//!
//! Design rules (see `DESIGN.md` §9):
//!
//! * **Zero cost when off.** Nothing here is instantiated unless a caller
//!   opts in; the mining hot path carries at most an `Option` check.
//! * **Shard, then merge.** Per-worker [`TelemetryShard`]s are collected
//!   without locks and merged commutatively, so results are independent of
//!   worker interleaving (pinned by a property test).
//! * **No dependencies.** The workspace builds offline; every exporter
//!   writes its format by hand on top of [`json`].

pub mod hist;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod shard;
pub mod trace;

pub use hist::Log2Histogram;
pub use metrics::{Metric, MetricKind, MetricsDoc};
pub use progress::{parse_cadence, LogLevel, ProgressCadence, ProgressSnapshot};
pub use shard::TelemetryShard;
pub use trace::{chrome_trace_json, CounterEvent, Span, SpanRing, TraceClock};
