//! Live progress reporting: cadence parsing, human lines, JSONL heartbeat.
//!
//! The engine's reporter samples a few shared atomics (tasks done, set-op
//! iterations, quarantine count) into a [`ProgressSnapshot`]; this module
//! owns how a snapshot is parsed, formatted, and serialized so the CLI,
//! the engine, and tests agree on one format.

use crate::json::json_key;
use std::time::Duration;

/// How often to report progress: every N completed tasks, or every N
/// seconds of wall clock (the CLI's `--progress N|Ns`, mirroring
/// `--checkpoint-interval`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgressCadence {
    /// Report when the done-task count crosses a multiple of N.
    Tasks(u64),
    /// Report every N seconds.
    Wall(Duration),
}

/// Parses `N` (tasks) or `Ns` (seconds) into a cadence.
///
/// # Errors
///
/// Returns a description of the expected format on malformed or zero
/// input.
pub fn parse_cadence(s: &str) -> Result<ProgressCadence, String> {
    let (digits, wall) = match s.strip_suffix('s') {
        Some(d) => (d, true),
        None => (s, false),
    };
    let n: u64 =
        digits.parse().map_err(|_| format!("expected a task count N or seconds Ns, got {s:?}"))?;
    if n == 0 {
        return Err("cadence must be nonzero".to_string());
    }
    Ok(if wall { ProgressCadence::Wall(Duration::from_secs(n)) } else { ProgressCadence::Tasks(n) })
}

/// Verbosity of the CLI's stderr channel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LogLevel {
    /// Only hard errors.
    Error,
    /// Errors plus degraded-run warnings.
    Warn,
    /// Default: warnings plus progress/timing lines.
    Info,
    /// Everything, including per-run configuration echoes.
    Debug,
}

impl LogLevel {
    /// Parses `error|warn|info|debug` (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns the offending string on unknown levels.
    pub fn parse(s: &str) -> Result<LogLevel, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(LogLevel::Error),
            "warn" | "warning" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!("unknown log level {other:?} (error|warn|info|debug)")),
        }
    }

    /// Whether a message at `level` should be emitted under `self`.
    pub fn allows(self, level: LogLevel) -> bool {
        level <= self
    }
}

/// One progress observation, ready to format.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProgressSnapshot {
    /// Microseconds since the run started.
    pub elapsed_us: u64,
    /// Start-vertex tasks finished (completed or quarantined).
    pub done: u64,
    /// Total start-vertex tasks in this run.
    pub total: u64,
    /// Set-op merge-loop iterations spent so far.
    pub setop_iterations: u64,
    /// Tasks quarantined after exhausting retries.
    pub quarantined: u64,
    /// Stragglers detected (known only at run end; `None` mid-run).
    pub stragglers: Option<u64>,
    /// Final run status (`None` mid-run).
    pub status: Option<&'static str>,
}

impl ProgressSnapshot {
    /// Estimated seconds remaining, extrapolating the current task rate.
    pub fn eta_secs(&self) -> Option<f64> {
        if self.done == 0 || self.total <= self.done {
            return None;
        }
        let elapsed = self.elapsed_us as f64 / 1e6;
        Some(elapsed / self.done as f64 * (self.total - self.done) as f64)
    }

    /// Set-op iterations per second so far.
    pub fn setops_per_sec(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.setop_iterations as f64 / (self.elapsed_us as f64 / 1e6)
    }

    /// The human stderr line (prefixed `[progress]`).
    pub fn line(&self) -> String {
        let pct = if self.total > 0 { 100.0 * self.done as f64 / self.total as f64 } else { 0.0 };
        let mut s = format!(
            "[progress] {}/{} tasks ({:.1}%), {} setops/s",
            self.done,
            self.total,
            pct,
            humanize(self.setops_per_sec())
        );
        match self.eta_secs() {
            Some(eta) => s.push_str(&format!(", eta {eta:.1}s")),
            None => s.push_str(", eta -"),
        }
        if self.quarantined > 0 {
            s.push_str(&format!(", quarantined {}", self.quarantined));
        }
        if let Some(n) = self.stragglers {
            s.push_str(&format!(", stragglers {n}"));
        }
        if let Some(status) = self.status {
            s.push_str(&format!(", status {status}"));
        }
        s
    }

    /// One JSONL heartbeat record (no trailing newline).
    pub fn heartbeat_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        json_key(&mut out, "elapsed_us");
        out.push_str(&self.elapsed_us.to_string());
        out.push(',');
        json_key(&mut out, "done");
        out.push_str(&self.done.to_string());
        out.push(',');
        json_key(&mut out, "total");
        out.push_str(&self.total.to_string());
        out.push(',');
        json_key(&mut out, "setop_iterations");
        out.push_str(&self.setop_iterations.to_string());
        out.push(',');
        json_key(&mut out, "quarantined");
        out.push_str(&self.quarantined.to_string());
        if let Some(n) = self.stragglers {
            out.push(',');
            json_key(&mut out, "stragglers");
            out.push_str(&n.to_string());
        }
        if let Some(status) = self.status {
            out.push(',');
            json_key(&mut out, "status");
            crate::json::json_str(&mut out, status);
        }
        out.push('}');
        out
    }
}

fn humanize(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_parses_tasks_and_seconds() {
        assert_eq!(parse_cadence("8"), Ok(ProgressCadence::Tasks(8)));
        assert_eq!(parse_cadence("2s"), Ok(ProgressCadence::Wall(Duration::from_secs(2))));
        assert!(parse_cadence("0").is_err());
        assert!(parse_cadence("soon").is_err());
        assert!(parse_cadence("").is_err());
    }

    #[test]
    fn log_levels_order_and_parse() {
        assert_eq!(LogLevel::parse("WARN"), Ok(LogLevel::Warn));
        assert!(LogLevel::parse("verbose").is_err());
        assert!(LogLevel::Info.allows(LogLevel::Warn));
        assert!(!LogLevel::Warn.allows(LogLevel::Info));
        assert!(LogLevel::Debug.allows(LogLevel::Debug));
    }

    fn snap() -> ProgressSnapshot {
        ProgressSnapshot {
            elapsed_us: 2_000_000,
            done: 50,
            total: 200,
            setop_iterations: 3_000_000,
            quarantined: 1,
            stragglers: None,
            status: None,
        }
    }

    #[test]
    fn line_contains_rate_eta_and_quarantine() {
        let line = snap().line();
        assert!(line.starts_with("[progress] 50/200 tasks (25.0%)"), "{line}");
        assert!(line.contains("1.5M setops/s"), "{line}");
        assert!(line.contains("eta 6.0s"), "{line}");
        assert!(line.contains("quarantined 1"), "{line}");
    }

    #[test]
    fn heartbeat_is_one_json_object() {
        let mut s = snap();
        s.stragglers = Some(2);
        s.status = Some("Complete");
        assert_eq!(
            s.heartbeat_json(),
            "{\"elapsed_us\":2000000,\"done\":50,\"total\":200,\
             \"setop_iterations\":3000000,\"quarantined\":1,\
             \"stragglers\":2,\"status\":\"Complete\"}"
        );
    }
}
