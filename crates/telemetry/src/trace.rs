//! Span tracing and the Chrome `trace_event` exporter.
//!
//! The tracing core is deliberately tiny: a [`Span`] is a fixed-size
//! `Copy` record (static name, microsecond timestamps from one shared
//! [`TraceClock`], worker id, one optional integer argument), collected
//! into per-worker [`SpanRing`] buffers. Workers never share a buffer, so
//! the mining hot path takes no locks and performs no allocations beyond
//! the ring's one up-front reservation; when a ring fills, new spans are
//! counted as dropped rather than reallocating.
//!
//! [`chrome_trace_json`] renders spans (and optional counter time series,
//! used for the simulator's per-PE occupancy timelines) in the Chrome
//! `trace_event` JSON format, which loads directly in `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev).

use crate::json::{json_f64, json_key, json_str};
use std::time::Instant;

/// Monotonic time base shared by every span of one run.
///
/// Chrome traces want microsecond offsets from an arbitrary origin;
/// `TraceClock` pins that origin at session start. It is `Copy` so each
/// worker can carry its own handle without synchronization.
#[derive(Clone, Copy, Debug)]
pub struct TraceClock {
    origin: Instant,
}

impl TraceClock {
    /// Starts a new clock; all spans of a run should share one.
    pub fn start() -> TraceClock {
        TraceClock { origin: Instant::now() }
    }

    /// Microseconds elapsed since the clock started.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// One completed span (or instant event when `dur_us == 0`).
///
/// Field order is the canonical sort order used when merging per-worker
/// shards, making the merged span list independent of worker
/// interleaving.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Span {
    /// Start offset in microseconds on the run's [`TraceClock`].
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Worker/thread lane (Chrome `tid`). Worker 0 is the driver.
    pub tid: u32,
    /// Static span name (`"mine"`, `"start-vertex-task"`, ...).
    pub name: &'static str,
    /// Category shown by the trace viewer (`"engine"`, `"checkpoint"`...).
    pub cat: &'static str,
    /// Optional argument rendered into the event's `args` object.
    pub arg: Option<(&'static str, u64)>,
}

impl Span {
    /// Builds a span from two clock readings.
    pub fn close(
        clock: &TraceClock,
        name: &'static str,
        cat: &'static str,
        start_us: u64,
        tid: u32,
        arg: Option<(&'static str, u64)>,
    ) -> Span {
        let end = clock.now_us();
        Span { ts_us: start_us, dur_us: end.saturating_sub(start_us), tid, name, cat, arg }
    }
}

/// A bounded, drop-counting span buffer owned by exactly one worker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanRing {
    spans: Vec<Span>,
    cap: usize,
    /// Spans discarded because the ring was full.
    pub dropped: u64,
}

/// Default per-worker span capacity (~2.6 MB of spans per worker at most;
/// one span per start-vertex task means graphs up to 64k start vertices
/// per worker trace losslessly).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

impl Default for SpanRing {
    fn default() -> Self {
        SpanRing::new(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanRing {
    /// A ring with space for `cap` spans, reserved up front so pushes on
    /// the hot path never allocate.
    pub fn new(cap: usize) -> SpanRing {
        SpanRing { spans: Vec::with_capacity(cap), cap, dropped: 0 }
    }

    /// Records a span, or counts it dropped when full.
    #[inline]
    pub fn push(&mut self, span: Span) {
        if self.spans.len() < self.cap {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drains the buffered spans, leaving the ring empty but reusable.
    pub fn drain(&mut self) -> Vec<Span> {
        std::mem::take(&mut self.spans)
    }
}

/// One sample of a counter time series (`ph:"C"` in the trace format).
/// Each series entry becomes a stacked band in the viewer.
#[derive(Clone, PartialEq, Debug)]
pub struct CounterEvent {
    /// Sample timestamp in microseconds.
    pub ts_us: u64,
    /// Counter track name (e.g. `"pe0 fsm"`).
    pub name: String,
    /// `(band, value)` pairs plotted at this timestamp.
    pub series: Vec<(String, f64)>,
}

/// Renders spans and counter series as Chrome `trace_event` JSON.
///
/// The output is a complete JSON object (`{"traceEvents":[...]}`) that
/// `chrome://tracing` and Perfetto open directly. Spans become complete
/// (`ph:"X"`) events; counters become `ph:"C"` events on their own
/// tracks; the process is labelled `process` via a metadata event.
pub fn chrome_trace_json(process: &str, spans: &[Span], counters: &[CounterEvent]) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 96 + counters.len() * 64);
    out.push('{');
    json_key(&mut out, "displayTimeUnit");
    json_str(&mut out, "ms");
    out.push(',');
    json_key(&mut out, "traceEvents");
    out.push('[');
    // Process-name metadata event.
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{");
    json_key(&mut out, "name");
    json_str(&mut out, process);
    out.push_str("}}");
    for s in spans {
        out.push(',');
        out.push('{');
        json_key(&mut out, "name");
        json_str(&mut out, s.name);
        out.push(',');
        json_key(&mut out, "cat");
        json_str(&mut out, s.cat);
        out.push_str(",\"ph\":\"X\",");
        out.push_str(&format!(
            "\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            s.ts_us, s.dur_us, s.tid
        ));
        if let Some((k, v)) = s.arg {
            out.push(',');
            json_key(&mut out, "args");
            out.push('{');
            json_key(&mut out, k);
            out.push_str(&v.to_string());
            out.push('}');
        }
        out.push('}');
    }
    for c in counters {
        out.push(',');
        out.push('{');
        json_key(&mut out, "name");
        json_str(&mut out, &c.name);
        out.push_str(",\"ph\":\"C\",");
        out.push_str(&format!("\"ts\":{},\"pid\":1,", c.ts_us));
        json_key(&mut out, "args");
        out.push('{');
        for (i, (band, v)) in c.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_key(&mut out, band);
            json_f64(&mut out, *v);
        }
        out.push('}');
        out.push('}');
    }
    out.push(']');
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(ts: u64, tid: u32) -> Span {
        Span { ts_us: ts, dur_us: 5, tid, name: "task", cat: "engine", arg: Some(("vid", 7)) }
    }

    #[test]
    fn ring_drops_instead_of_growing() {
        let mut r = SpanRing::new(2);
        r.push(span(0, 0));
        r.push(span(1, 0));
        r.push(span(2, 0));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped, 1);
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert!(r.is_empty());
    }

    #[test]
    fn clock_is_monotonic() {
        let c = TraceClock::start();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn chrome_trace_shape() {
        let spans = vec![span(10, 1)];
        let counters = vec![CounterEvent {
            ts_us: 20,
            name: "pe0 fsm".into(),
            series: vec![("Idle".into(), 3.0), ("Extending".into(), 0.5)],
        }];
        let json = chrome_trace_json("flexminer", &spans, &counters);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains(
            "{\"name\":\"task\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":10,\"dur\":5,\"pid\":1,\"tid\":1,\"args\":{\"vid\":7}}"
        ));
        assert!(json.contains(
            "{\"name\":\"pe0 fsm\",\"ph\":\"C\",\"ts\":20,\"pid\":1,\"args\":{\"Idle\":3,\"Extending\":0.5}}"
        ));
        assert!(json.ends_with("]}"));
    }
}
