//! The unified metrics document and its two encoders.
//!
//! Every machine-readable report in the workspace (engine runs, simulator
//! runs, CLI `--metrics-out`) is assembled as a [`MetricsDoc`] — a list of
//! named metrics with labelled samples — and rendered either as
//! Prometheus text exposition format or as compact JSON. Both encodings
//! are pinned by golden-file tests.

use crate::hist::Log2Histogram;
use crate::json::{json_f64, json_key, json_str};

/// Prometheus metric kinds used by the exporters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// Monotonic count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Log2 histogram (rendered with `_bucket`/`_sum`/`_count` series).
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One labelled sample of a metric.
#[derive(Clone, PartialEq, Debug)]
pub struct Sample {
    /// Label pairs, rendered in insertion order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A named metric with its samples.
#[derive(Clone, PartialEq, Debug)]
pub struct Metric {
    /// Metric name (Prometheus naming conventions).
    pub name: String,
    /// One-line help string.
    pub help: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// Samples; histogram metrics carry their cumulative buckets here
    /// with an `le` label.
    pub samples: Vec<Sample>,
    /// `(sum, count)` for histogram metrics.
    pub hist_totals: Option<(f64, u64)>,
}

/// An ordered collection of metrics plus one encoder per output format.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MetricsDoc {
    /// Metrics in emission order.
    pub metrics: Vec<Metric>,
}

impl MetricsDoc {
    /// An empty document.
    pub fn new() -> MetricsDoc {
        MetricsDoc::default()
    }

    fn push_metric(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut Metric {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
            hist_totals: None,
        });
        self.metrics.last_mut().expect("just pushed")
    }

    /// Adds an unlabelled counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.push_metric(name, help, MetricKind::Counter)
            .samples
            .push(Sample { labels: Vec::new(), value: value as f64 });
    }

    /// Adds an unlabelled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.push_metric(name, help, MetricKind::Gauge)
            .samples
            .push(Sample { labels: Vec::new(), value });
    }

    /// Adds a counter with one sample per `(labels, value)` row.
    pub fn counter_vec(&mut self, name: &str, help: &str, rows: &[(&[(&str, &str)], u64)]) {
        let m = self.push_metric(name, help, MetricKind::Counter);
        for (labels, value) in rows {
            m.samples.push(Sample {
                labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
                value: *value as f64,
            });
        }
    }

    /// Adds a gauge with one sample per `(labels, value)` row.
    pub fn gauge_vec(&mut self, name: &str, help: &str, rows: &[(&[(&str, &str)], f64)]) {
        let m = self.push_metric(name, help, MetricKind::Gauge);
        for (labels, value) in rows {
            m.samples.push(Sample {
                labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
                value: *value,
            });
        }
    }

    /// Adds a log2 histogram as a Prometheus histogram (cumulative
    /// buckets with power-of-two `le` bounds, plus `_sum`/`_count`).
    /// Extra `labels` are attached to every bucket sample.
    pub fn log2_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        h: &Log2Histogram,
    ) {
        let occupied = h.occupied_len();
        let m = self.push_metric(name, help, MetricKind::Histogram);
        let mut cumulative = 0u64;
        for i in 0..occupied {
            cumulative += h.buckets[i];
            let mut sample_labels: Vec<(String, String)> =
                labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
            sample_labels.push(("le".to_string(), Log2Histogram::bucket_le(i).to_string()));
            m.samples.push(Sample { labels: sample_labels, value: cumulative as f64 });
        }
        let mut inf_labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        inf_labels.push(("le".to_string(), "+Inf".to_string()));
        m.samples.push(Sample { labels: inf_labels, value: h.count as f64 });
        m.hist_totals = Some((h.sum as f64, h.count));
    }

    /// Renders the document in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(self.metrics.len() * 96);
        for m in &self.metrics {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            out.push_str(&format!("# TYPE {} {}\n", m.name, m.kind.as_str()));
            let base = if m.kind == MetricKind::Histogram {
                format!("{}_bucket", m.name)
            } else {
                m.name.clone()
            };
            for s in &m.samples {
                out.push_str(&base);
                render_prom_labels(&mut out, &s.labels);
                out.push(' ');
                let mut v = String::new();
                json_f64(&mut v, s.value);
                out.push_str(if v == "null" { "NaN" } else { &v });
                out.push('\n');
            }
            if let Some((sum, count)) = m.hist_totals {
                let mut v = String::new();
                json_f64(&mut v, sum);
                out.push_str(&format!("{}_sum {}\n", m.name, v));
                out.push_str(&format!("{}_count {}\n", m.name, count));
            }
        }
        out
    }

    /// Renders the document as compact JSON
    /// (`{"metrics":[{"name":...,"type":...,"samples":[...]},...]}`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.metrics.len() * 96);
        out.push('{');
        json_key(&mut out, "metrics");
        out.push('[');
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_key(&mut out, "name");
            json_str(&mut out, &m.name);
            out.push(',');
            json_key(&mut out, "help");
            json_str(&mut out, &m.help);
            out.push(',');
            json_key(&mut out, "type");
            json_str(&mut out, m.kind.as_str());
            out.push(',');
            json_key(&mut out, "samples");
            out.push('[');
            for (j, s) in m.samples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('{');
                json_key(&mut out, "labels");
                out.push('{');
                for (k, (lk, lv)) in s.labels.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    json_key(&mut out, lk);
                    json_str(&mut out, lv);
                }
                out.push('}');
                out.push(',');
                json_key(&mut out, "value");
                json_f64(&mut out, s.value);
                out.push('}');
            }
            out.push(']');
            if let Some((sum, count)) = m.hist_totals {
                out.push(',');
                json_key(&mut out, "sum");
                json_f64(&mut out, sum);
                out.push(',');
                json_key(&mut out, "count");
                out.push_str(&count.to_string());
            }
            out.push('}');
        }
        out.push(']');
        out.push('}');
        out
    }
}

fn render_prom_labels(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_counter_and_gauge() {
        let mut doc = MetricsDoc::new();
        doc.counter("fm_tasks_total", "Completed start-vertex tasks.", 42);
        doc.gauge_vec(
            "fm_pe_occupancy_ratio",
            "Share of charged cycles per FSM state.",
            &[(&[("pe", "0"), ("state", "Idle")], 0.25)],
        );
        let text = doc.to_prometheus();
        assert!(text.contains("# HELP fm_tasks_total Completed start-vertex tasks.\n"));
        assert!(text.contains("# TYPE fm_tasks_total counter\n"));
        assert!(text.contains("fm_tasks_total 42\n"));
        assert!(text.contains("fm_pe_occupancy_ratio{pe=\"0\",state=\"Idle\"} 0.25\n"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let mut h = Log2Histogram::new();
        h.record(1);
        h.record(3);
        h.record(3);
        let mut doc = MetricsDoc::new();
        doc.log2_histogram("fm_frontier_size", "Frontier sizes.", &[], &h);
        let text = doc.to_prometheus();
        assert!(text.contains("fm_frontier_size_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("fm_frontier_size_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("fm_frontier_size_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("fm_frontier_size_sum 7\n"));
        assert!(text.contains("fm_frontier_size_count 3\n"));
    }

    #[test]
    fn json_shape() {
        let mut doc = MetricsDoc::new();
        doc.counter_vec("fm_depth_iters", "Iterations.", &[(&[("depth", "2")], 9)]);
        let json = doc.to_json();
        assert_eq!(
            json,
            "{\"metrics\":[{\"name\":\"fm_depth_iters\",\"help\":\"Iterations.\",\
             \"type\":\"counter\",\"samples\":[{\"labels\":{\"depth\":\"2\"},\"value\":9}]}]}"
        );
    }
}
