//! Minimal hand-rolled JSON writing.
//!
//! This is the single JSON writer for the workspace: the bench harness's
//! `BENCH_*.json` tables, the metrics exporter, the Chrome-trace exporter,
//! and the progress heartbeat all serialize through these helpers. The
//! escaping rules are pinned by golden-file tests (the bench `results/`
//! history must stay byte-comparable across releases).

/// Appends `s` as a JSON string literal (quotes, backslashes, and control
/// characters escaped per RFC 8259).
pub fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `items` as a JSON array of string literals.
pub fn json_str_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_str(out, item);
    }
    out.push(']');
}

/// Appends a `"key":` prefix (escaped key plus colon).
pub fn json_key(out: &mut String, key: &str) {
    json_str(out, key);
    out.push(':');
}

/// Appends an `f64` the way our exporters format numbers: integral values
/// print without a fraction (`3`, not `3.0`), everything else prints with
/// up to six significant decimals, and non-finite values become `null`
/// (JSON has no NaN/Inf).
pub fn json_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        let s = format!("{v:.6}");
        out.push_str(s.trim_end_matches('0').trim_end_matches('.'));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(f: impl Fn(&mut String)) -> String {
        let mut s = String::new();
        f(&mut s);
        s
    }

    #[test]
    fn escapes_match_rfc8259() {
        assert_eq!(render(|o| json_str(o, "a\"b\\c\nd\te\r")), r#""a\"b\\c\nd\te\r""#);
        assert_eq!(render(|o| json_str(o, "\u{1}")), "\"\\u0001\"");
        assert_eq!(render(|o| json_str(o, "plain")), "\"plain\"");
    }

    #[test]
    fn str_array_is_comma_separated() {
        let items = vec!["a".to_string(), "b\"".to_string()];
        assert_eq!(render(|o| json_str_array(o, &items)), r#"["a","b\""]"#);
        assert_eq!(render(|o| json_str_array(o, &[])), "[]");
    }

    #[test]
    fn f64_formatting_is_stable() {
        assert_eq!(render(|o| json_f64(o, 3.0)), "3");
        assert_eq!(render(|o| json_f64(o, -2.0)), "-2");
        assert_eq!(render(|o| json_f64(o, 0.5)), "0.5");
        assert_eq!(render(|o| json_f64(o, 1.25)), "1.25");
        assert_eq!(render(|o| json_f64(o, f64::NAN)), "null");
        assert_eq!(render(|o| json_f64(o, f64::INFINITY)), "null");
    }
}
