//! Fixed-size log2 histograms.
//!
//! Telemetry buckets quantities whose useful signal is the order of
//! magnitude (task wall time, frontier sizes) into power-of-two buckets:
//! bucket `i` counts values whose bit length is `i`, i.e. values in
//! `[2^(i-1), 2^i)`, with bucket 0 reserved for zero. 64 buckets cover the
//! whole `u64` range, the struct is `Copy`-sized and allocation-free, and
//! merging two histograms is element-wise addition — commutative and
//! associative, so per-worker shards merge order-independently.

/// A log2 histogram over `u64` samples.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Log2Histogram {
    /// `buckets[i]` counts samples with bit length `i` (zero goes to 0).
    pub buckets: [u64; 64],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples (saturating, for mean/rate computation).
    pub sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { buckets: [0; 64], count: 0, sum: 0 }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index for `v`: its bit length (0 for 0).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i` (`2^i - 1`; bucket 0 holds
    /// only zero). Used as the Prometheus `le` label.
    pub fn bucket_le(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i).wrapping_sub(1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        // bucket_of(u64::MAX) == 64, which must land in the last slot.
        self.buckets[Self::bucket_of(v).min(63)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Whether any sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Index of the highest non-empty bucket plus one (0 when empty), so
    /// exporters can skip the long empty tail.
    pub fn occupied_len(&self) -> usize {
        64 - self.buckets.iter().rev().take_while(|&&b| b == 0).count()
    }

    /// Element-wise accumulation of another histogram (commutative).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_le(0), 0);
        assert_eq!(Log2Histogram::bucket_le(3), 7);
        assert_eq!(Log2Histogram::bucket_le(64), u64::MAX);
    }

    #[test]
    fn record_and_merge_commute() {
        let samples_a = [0u64, 1, 5, 1000];
        let samples_b = [7u64, 7, u64::MAX];
        let mut ab = Log2Histogram::new();
        let mut ba = Log2Histogram::new();
        let (mut ha, mut hb) = (Log2Histogram::new(), Log2Histogram::new());
        for &s in &samples_a {
            ha.record(s);
        }
        for &s in &samples_b {
            hb.record(s);
        }
        ab.merge(&ha);
        ab.merge(&hb);
        ba.merge(&hb);
        ba.merge(&ha);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 7);
        assert_eq!(ab.buckets[3], 3); // 5, 7, 7
        assert_eq!(ab.buckets[63], 1); // u64::MAX clamped into the top slot
    }

    #[test]
    fn occupied_len_skips_tail() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.occupied_len(), 0);
        h.record(0);
        assert_eq!(h.occupied_len(), 1);
        h.record(9); // bucket 4
        assert_eq!(h.occupied_len(), 5);
    }
}
